//! The parallel pipeline engine: one worker thread per stage, DAM-style.
//!
//! [`simulate_parallel`] runs every [`PipelineSpec`] stage as a *context*
//! on its own OS thread (spawned through `morph_check::thread::scope`, so
//! the whole engine is model-checkable as the shipping code) and connects
//! them with **time-stamped bounded channels** ([`TimedChannel`]). No
//! global simulated clock exists: each worker advances its own local time
//! from the timestamps it receives, so a receiver can run arbitrarily far
//! past a lagging sender's frontier without any global synchronization —
//! the channels carry *time*, not payloads.
//!
//! # The recurrence (why the result is bit-identical)
//!
//! The sequential oracle ([`simulate`]) is deterministic, and its
//! schedule satisfies a per-stage recurrence over frame index `j`
//! (`s_i` = service, `cap_e` = channel capacity, `rel_i(-1) = 0`):
//!
//! ```text
//! pop_i(j)  = max( rel_i(j-1), max over in-edges (u -> i)  rel_u(j) )
//! done_i(j) = pop_i(j) + s_i
//! rel_i(j)  = max( done_i(j), max over out-edges (i -> v)  pop_v(j - cap_e) )   for j >= cap_e
//! ```
//!
//! Every quantity in [`PipelineStats`] — and every span and gauge in the
//! traced sidecar — is a pure function of the `pop`/`rel` vectors, so an
//! engine that computes the same recurrence computes bit-identical
//! results, regardless of which thread ran when. Workers exchange exactly
//! the recurrence's cross-stage terms: `rel_u(j)` flows **forward** on an
//! edge's data channel, and `pop_v(j)` flows **backward** on its credit
//! channel (a producer consumes credit `j - cap_e` before releasing
//! frame `j` — the bounded buffer as flow control). Both directions
//! batch timestamps to amortize synchronization.
//!
//! Deadlock freedom: workers flush every pending outbound batch before
//! any blocking receive (no hold-and-wait), channel capacities bound the
//! protocol's in-flight counts, and the recurrence is well-founded on
//! acyclic specs (data edges go forward, credit edges drop the frame
//! index by `cap_e >= 1`) — the standard Kahn-process-network induction.
//! The same discipline makes the worker-admission throttle
//! ([`ParallelConfig::threads`]) safe at any thread count >= 1: a worker
//! parks its admission permit around every blocking channel op, so
//! permits are only held while compute is guaranteed to finish.
//!
//! # Oracle discipline
//!
//! The sequential engine stays the shipping oracle. [`EngineKind`]
//! selects the engine (env-overridable via `MORPH_ENGINE`, default
//! sequential), and [`EngineKind::Debug`] runs **both** and asserts
//! bit-identical stats and traced sidecars on every call — the
//! `checker_context` idiom from DAM, and the discipline the differential
//! test suite and the `parallel` bench bin enforce across the zoo.

use crate::engine::{
    edge_track, simulate, simulate_traced, stage_track, Chan, ChannelStats, PipelineSpec,
    PipelineStats, StageStats,
};
use morph_check::sync::{AtomicCell, Channel, RaceSlot, Semaphore};
use morph_check::thread as shim_thread;
use morph_trace::{canonical_sort, Phase, Recorder, TraceBuffer, TraceEvent};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Engine selection

/// Which pipeline engine a [`crate::simulate`]-shaped call runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The single-threaded discrete-event oracle ([`simulate`]). Default.
    Sequential,
    /// The multi-threaded engine ([`simulate_parallel`]).
    Parallel,
    /// Run **both** engines and assert bit-identical [`PipelineStats`]
    /// (and, when tracing, byte-identical sidecars); the oracle's result
    /// is returned. Differential checking as a runtime mode.
    Debug,
}

impl EngineKind {
    /// Environment variable consulted by [`EngineKind::from_env`].
    pub const ENV: &'static str = "MORPH_ENGINE";

    /// Every engine kind, in escalation order.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::Sequential,
        EngineKind::Parallel,
        EngineKind::Debug,
    ];

    /// Stable lowercase label (the `MORPH_ENGINE` vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Sequential => "sequential",
            EngineKind::Parallel => "parallel",
            EngineKind::Debug => "debug",
        }
    }

    /// Parse a [`EngineKind::label`].
    pub fn from_label(label: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// The engine selected by the `MORPH_ENGINE` environment variable,
    /// or `None` when unset/empty. An unrecognized value panics — a
    /// typo'd override must not silently fall back to the default.
    pub fn from_env() -> Option<EngineKind> {
        match std::env::var(Self::ENV) {
            Ok(v) if v.is_empty() => None,
            Ok(v) => Some(EngineKind::from_label(&v).unwrap_or_else(|| {
                panic!(
                    "{}={v:?} is not one of sequential|parallel|debug",
                    Self::ENV
                )
            })),
            Err(_) => None,
        }
    }
}

/// Run the selected engine (see [`EngineKind`]).
///
/// # Panics
///
/// Panics if the spec is invalid, or — under [`EngineKind::Debug`] — if
/// the engines disagree.
pub fn simulate_with_engine(kind: EngineKind, spec: &PipelineSpec, frames: u64) -> PipelineStats {
    match kind {
        EngineKind::Sequential => simulate(spec, frames),
        EngineKind::Parallel => simulate_parallel(spec, frames),
        EngineKind::Debug => {
            let seq = simulate(spec, frames);
            let par = simulate_parallel(spec, frames);
            assert_engines_agree(&seq, &par);
            seq
        }
    }
}

/// Traced variant of [`simulate_with_engine`]. Under
/// [`EngineKind::Debug`] both engines record into private buffers that
/// are asserted identical; the (sequential) events are then forwarded to
/// `rec`, so the caller observes exactly one run's trace.
///
/// # Panics
///
/// Panics if the spec is invalid, or — under [`EngineKind::Debug`] — if
/// the engines' stats or traced sidecars diverge.
pub fn simulate_traced_with_engine(
    kind: EngineKind,
    spec: &PipelineSpec,
    frames: u64,
    rec: &dyn Recorder,
) -> PipelineStats {
    match kind {
        EngineKind::Sequential => simulate_traced(spec, frames, rec),
        EngineKind::Parallel => simulate_parallel_traced(spec, frames, rec),
        EngineKind::Debug => {
            if !rec.enabled() {
                return simulate_with_engine(EngineKind::Debug, spec, frames);
            }
            let seq_buf = TraceBuffer::new();
            let par_buf = TraceBuffer::new();
            let seq = simulate_traced(spec, frames, &seq_buf);
            let par = simulate_parallel_traced(spec, frames, &par_buf);
            assert_engines_agree(&seq, &par);
            let (se, pe) = (seq_buf.events(), par_buf.events());
            assert_eq!(
                se,
                pe,
                "debug engine: traced sidecars diverge ({} vs {} events)",
                se.len(),
                pe.len()
            );
            for e in se {
                rec.record(e);
            }
            seq
        }
    }
}

fn assert_engines_agree(seq: &PipelineStats, par: &PipelineStats) {
    assert!(
        seq == par,
        "debug engine: parallel stats diverge from the sequential oracle\n\
         sequential: {seq:?}\n\
         parallel:   {par:?}"
    );
}

// ---------------------------------------------------------------------------
// Channel flavors

/// Synchronization flavor of one edge's channel pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFlavor {
    /// Single-producer single-consumer ring: payloads in
    /// [`RaceSlot`]s ordered *only* by an item/space [`Semaphore`] pair
    /// (the race detector proves that protocol sufficient). The cheap
    /// path — legal only for edges a topological proof showed are not
    /// part of any wait-for knot.
    Acyclic,
    /// Blocking bounded MPMC channel shim — the conservative fallback
    /// for any edge, knotted or not.
    General,
}

impl ChannelFlavor {
    /// Stable lowercase label (bench tables, audit subjects).
    pub fn label(self) -> &'static str {
        match self {
            ChannelFlavor::Acyclic => "acyclic",
            ChannelFlavor::General => "general",
        }
    }
}

/// Per-edge flavor assignment for `spec`, derived from a Kahn
/// topological-ordering proof over the stage graph (the same certificate
/// `morph-audit`'s knot detector computes independently — its
/// `flavor-plan` rule cross-checks this function): an edge gets the
/// cheap [`ChannelFlavor::Acyclic`] flavor only if **both** endpoints
/// were topologically ordered, i.e. neither participates in a cycle;
/// anything else falls back to [`ChannelFlavor::General`]. Valid specs
/// are forward-edge-only and therefore fully acyclic, but the plan
/// *proves* that instead of assuming it.
pub fn flavor_plan(spec: &PipelineSpec) -> Vec<ChannelFlavor> {
    let n = spec.stages.len();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &spec.edges {
        indeg[e.to] += 1;
        out[e.from].push(e.to);
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut ordered = vec![false; n];
    while let Some(i) = queue.pop() {
        ordered[i] = true;
        for &v in &out[i] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    spec.edges
        .iter()
        .map(|e| {
            if ordered[e.from] && ordered[e.to] {
                ChannelFlavor::Acyclic
            } else {
                ChannelFlavor::General
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Time-stamped channel

/// A bounded channel carrying batches of non-decreasing simulated-time
/// stamps, plus a published **frontier**: the producer's local simulated
/// time, stored (single-writer) before each batch becomes visible. Any
/// observer therefore sees `frontier() >=` every timestamp it has
/// received on the channel, without taking a lock — the "advance past
/// the sender's frontier" contract the model tests pin down.
///
/// Flavor picks the synchronization ([`ChannelFlavor`]); semantics are
/// identical. The ring flavor's per-slot cursors are *caller-owned*
/// (`&mut usize` on [`TimedChannel::send`]/[`TimedChannel::recv`]): the
/// single producer and single consumer each keep their own index, so the
/// hot path shares only the semaphores, the slot, and the frontier cell.
#[derive(Debug)]
pub struct TimedChannel {
    inner: Inner,
    frontier: AtomicCell<u64>,
}

#[derive(Debug)]
enum Inner {
    Ring(Ring),
    General(Channel<Vec<u64>>),
}

#[derive(Debug)]
struct Ring {
    slots: Vec<RaceSlot<Vec<u64>>>,
    items: Semaphore,
    spaces: Semaphore,
}

impl TimedChannel {
    /// A channel of `capacity.max(1)` in-flight batches.
    pub fn new(flavor: ChannelFlavor, capacity: usize) -> Self {
        let cap = capacity.max(1);
        let inner = match flavor {
            ChannelFlavor::Acyclic => Inner::Ring(Ring {
                slots: (0..cap).map(|_| RaceSlot::empty()).collect(),
                items: Semaphore::new(0),
                spaces: Semaphore::new(cap),
            }),
            ChannelFlavor::General => Inner::General(Channel::bounded(cap)),
        };
        TimedChannel {
            inner,
            frontier: AtomicCell::new(0),
        }
    }

    /// This channel's flavor.
    pub fn flavor(&self) -> ChannelFlavor {
        match self.inner {
            Inner::Ring(_) => ChannelFlavor::Acyclic,
            Inner::General(_) => ChannelFlavor::General,
        }
    }

    /// Send a non-empty batch of non-decreasing timestamps, blocking
    /// while the channel is full. `cursor` is the producer's ring index
    /// (caller-owned; ignored by the general flavor).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn send(&self, cursor: &mut usize, batch: Vec<u64>) {
        let horizon = *batch.last().expect("batch must be non-empty");
        // Publish the producer's time horizon before the payload: the
        // frontier tracks sender *progress*, so it may legitimately run
        // ahead of what is visible, never behind.
        self.frontier.store(horizon);
        match &self.inner {
            Inner::Ring(r) => {
                r.spaces.acquire();
                r.slots[*cursor].put(batch);
                *cursor = (*cursor + 1) % r.slots.len();
                r.items.release();
            }
            Inner::General(ch) => ch.send(batch),
        }
    }

    /// Receive the next batch, blocking while the channel is empty.
    /// `cursor` is the consumer's ring index (caller-owned; ignored by
    /// the general flavor).
    pub fn recv(&self, cursor: &mut usize) -> Vec<u64> {
        match &self.inner {
            Inner::Ring(r) => {
                r.items.acquire();
                let batch = r.slots[*cursor]
                    .take()
                    .expect("an item permit implies an occupied slot");
                *cursor = (*cursor + 1) % r.slots.len();
                r.spaces.release();
                batch
            }
            Inner::General(ch) => ch.recv(),
        }
    }

    /// The producer's published simulated-time horizon: monotone, and
    /// `>=` every timestamp any receiver has observed on this channel.
    pub fn frontier(&self) -> u64 {
        self.frontier.load()
    }
}

// ---------------------------------------------------------------------------
// Engine configuration

/// Tuning knobs for the parallel engine; `Default` is the shipping
/// configuration. Results are bit-identical under **every**
/// configuration — these trade wall-clock only.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker-admission limit: at most this many stage workers run
    /// concurrently (clamped to >= 1); when it is >= the stage count the
    /// throttle is skipped entirely. Defaults to the
    /// `MORPH_TEST_THREADS` environment variable when set (the CI
    /// differential matrix pins worker counts through it without
    /// plumbing a knob into every caller), else
    /// `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Per-edge flavor override (length must equal `spec.edges.len()`);
    /// `None` uses [`flavor_plan`]. Overriding to
    /// [`ChannelFlavor::Acyclic`] on a knotted edge is unsound — this
    /// exists so tests and benches can force the general flavor.
    pub flavors: Option<Vec<ChannelFlavor>>,
    /// Timestamps buffered per outbound stream before a non-forced
    /// flush (clamped to >= 1). Amortizes channel synchronization.
    pub flush_batch: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: default_threads(),
            flavors: None,
            flush_batch: 32,
        }
    }
}

/// Default worker count: `MORPH_TEST_THREADS` if set and parsable
/// (clamped to >= 1), else the machine's available parallelism.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MORPH_TEST_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            return t.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

// ---------------------------------------------------------------------------
// Stage workers

/// Everything one stage worker needs, borrowed from the engine frame.
struct StageCtx<'a> {
    service: u64,
    frames: u64,
    /// Per in-edge: (data channel to receive, credit channel to send).
    ins: Vec<(&'a TimedChannel, &'a TimedChannel)>,
    /// Per out-edge: (data channel to send, credit channel to receive,
    /// edge capacity in frames).
    outs: Vec<(&'a TimedChannel, &'a TimedChannel, u64)>,
    flush_batch: usize,
    admission: Option<&'a Semaphore>,
}

/// Outbound streams of one worker: pending timestamp batches plus the
/// producer-side ring cursor per channel. Data streams first
/// (`0..outs`), then credit streams (`outs..outs + ins`).
struct Outbox<'a> {
    admission: Option<&'a Semaphore>,
    streams: Vec<(&'a TimedChannel, usize, Vec<u64>)>,
}

impl Outbox<'_> {
    fn push(&mut self, idx: usize, t: u64, flush_batch: usize) {
        self.streams[idx].2.push(t);
        if self.streams[idx].2.len() >= flush_batch {
            self.flush_one(idx);
        }
    }

    fn flush_one(&mut self, idx: usize) {
        let (ch, cursor, pending) = &mut self.streams[idx];
        if pending.is_empty() {
            return;
        }
        let batch = std::mem::take(pending);
        // The capacity proofs make these sends non-blocking in the
        // engine protocol, but park the admission permit anyway: a
        // worker must never hold one while waiting on a channel.
        match self.admission {
            Some(sem) => {
                sem.release();
                ch.send(cursor, batch);
                sem.acquire();
            }
            None => ch.send(cursor, batch),
        }
    }

    fn flush_all(&mut self) {
        for i in 0..self.streams.len() {
            self.flush_one(i);
        }
    }
}

/// Inbound streams of one worker: buffered timestamps plus the
/// consumer-side ring cursor per channel. Data streams first
/// (`0..ins`), then credit streams (`ins..ins + outs`).
struct Inbox<'a> {
    admission: Option<&'a Semaphore>,
    streams: Vec<(&'a TimedChannel, usize, VecDeque<u64>)>,
}

impl Inbox<'_> {
    /// Next timestamp from stream `idx`. A blocking receive first
    /// flushes every pending outbound batch — a blocked worker has
    /// always externalized everything it produced (the no-hold-and-wait
    /// rule the deadlock-freedom induction needs).
    fn next(&mut self, idx: usize, out: &mut Outbox<'_>) -> u64 {
        while self.streams[idx].2.is_empty() {
            out.flush_all();
            let (ch, cursor, buf) = &mut self.streams[idx];
            let batch = match self.admission {
                Some(sem) => {
                    sem.release();
                    let b = ch.recv(cursor);
                    sem.acquire();
                    b
                }
                None => ch.recv(cursor),
            };
            buf.extend(batch);
        }
        self.streams[idx].2.pop_front().expect("checked non-empty")
    }
}

/// One stage's context loop: compute the recurrence for every frame,
/// exchanging `rel` (forward) and `pop` (backward credit) timestamps.
/// Returns the stage's full `(pop, rel)` schedule.
fn run_stage(cx: &StageCtx<'_>) -> (Vec<u64>, Vec<u64>) {
    if let Some(sem) = cx.admission {
        sem.acquire();
    }
    let n_out = cx.outs.len();
    let n_in = cx.ins.len();
    let mut outbox = Outbox {
        admission: cx.admission,
        streams: cx
            .outs
            .iter()
            .map(|&(data, _, _)| (data, 0, Vec::new()))
            .chain(cx.ins.iter().map(|&(_, credit)| (credit, 0, Vec::new())))
            .collect(),
    };
    let mut inbox = Inbox {
        admission: cx.admission,
        streams: cx
            .ins
            .iter()
            .map(|&(data, _)| (data, 0, VecDeque::new()))
            .chain(
                cx.outs
                    .iter()
                    .map(|&(_, credit, _)| (credit, 0, VecDeque::new())),
            )
            .collect(),
    };
    let mut pop_v = Vec::with_capacity(cx.frames as usize);
    let mut rel_v = Vec::with_capacity(cx.frames as usize);
    let mut rel_prev = 0u64;
    for j in 0..cx.frames {
        // pop_i(j) = max(rel_i(j-1), max over in-edges rel_u(j)); a
        // source's supply is always ready, so only rel_i(j-1) gates it.
        let mut pop = rel_prev;
        for k in 0..n_in {
            pop = pop.max(inbox.next(k, &mut outbox));
        }
        pop_v.push(pop);
        // Popping frame j certifies buffer space for the producer's
        // frame j + cap: send pop_i(j) back as credit.
        for k in 0..n_in {
            outbox.push(n_out + k, pop, cx.flush_batch);
        }
        let done = pop + cx.service;
        // rel_i(j) additionally waits for downstream space on every
        // out-edge: credit j - cap must have arrived.
        let mut rel = done;
        for (m, &(_, _, cap)) in cx.outs.iter().enumerate() {
            if j >= cap {
                rel = rel.max(inbox.next(n_in + m, &mut outbox));
            }
        }
        rel_v.push(rel);
        for m in 0..n_out {
            outbox.push(m, rel, cx.flush_batch);
        }
        rel_prev = rel;
    }
    outbox.flush_all();
    if let Some(sem) = cx.admission {
        sem.release();
    }
    (pop_v, rel_v)
}

// ---------------------------------------------------------------------------
// Engine entry points

/// [`simulate`]'s parallel twin: bit-identical [`PipelineStats`],
/// computed by one worker thread per stage under the default
/// [`ParallelConfig`].
///
/// # Panics
///
/// Panics if the spec fails [`PipelineSpec::validate`].
pub fn simulate_parallel(spec: &PipelineSpec, frames: u64) -> PipelineStats {
    simulate_parallel_with(spec, frames, &ParallelConfig::default())
}

/// [`simulate_parallel`] with explicit tuning.
///
/// # Panics
///
/// Panics if the spec fails [`PipelineSpec::validate`] or a flavor
/// override does not cover every edge.
pub fn simulate_parallel_with(
    spec: &PipelineSpec,
    frames: u64,
    cfg: &ParallelConfig,
) -> PipelineStats {
    simulate_parallel_traced_with(spec, frames, &morph_trace::NoopRecorder, cfg)
}

/// [`simulate_traced`]'s parallel twin: the recorded sidecar is
/// byte-identical to the sequential oracle's (both engines emit the
/// canonical event order — see [`canonical_sort`]).
///
/// # Panics
///
/// Panics if the spec fails [`PipelineSpec::validate`].
pub fn simulate_parallel_traced(
    spec: &PipelineSpec,
    frames: u64,
    rec: &dyn Recorder,
) -> PipelineStats {
    simulate_parallel_traced_with(spec, frames, rec, &ParallelConfig::default())
}

/// [`simulate_parallel_traced`] with explicit tuning.
///
/// # Panics
///
/// Panics if the spec fails [`PipelineSpec::validate`] or a flavor
/// override does not cover every edge.
pub fn simulate_parallel_traced_with(
    spec: &PipelineSpec,
    frames: u64,
    rec: &dyn Recorder,
    cfg: &ParallelConfig,
) -> PipelineStats {
    spec.validate().expect("invalid pipeline spec");
    let n = spec.stages.len();
    let flavors = match &cfg.flavors {
        Some(f) => {
            assert_eq!(
                f.len(),
                spec.edges.len(),
                "flavor override must cover every edge"
            );
            f.clone()
        }
        None => flavor_plan(spec),
    };
    let chans: Vec<(TimedChannel, TimedChannel)> = spec
        .edges
        .iter()
        .zip(&flavors)
        .map(|(e, &fl)| {
            (
                TimedChannel::new(fl, e.capacity),
                TimedChannel::new(fl, e.capacity),
            )
        })
        .collect();
    let mut ins: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut outs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, e) in spec.edges.iter().enumerate() {
        outs[e.from].push(ei);
        ins[e.to].push(ei);
    }
    let threads = cfg.threads.max(1);
    let admission = (threads < n).then(|| Semaphore::new(threads));
    let ctxs: Vec<StageCtx<'_>> = (0..n)
        .map(|i| StageCtx {
            service: spec.stages[i].service_cycles,
            frames,
            ins: ins[i].iter().map(|&e| (&chans[e].0, &chans[e].1)).collect(),
            outs: outs[i]
                .iter()
                .map(|&e| (&chans[e].0, &chans[e].1, spec.edges[e].capacity as u64))
                .collect(),
            flush_batch: cfg.flush_batch.max(1),
            admission: admission.as_ref(),
        })
        .collect();
    let schedules: Vec<(Vec<u64>, Vec<u64>)> = shim_thread::scope(|s| {
        let handles: Vec<_> = ctxs
            .iter()
            .map(|cx| s.spawn(move || run_stage(cx)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    let (pops, rels): (Vec<Vec<u64>>, Vec<Vec<u64>>) = schedules.into_iter().unzip();
    assemble(spec, frames, &pops, &rels, rec)
}

/// Fold a complete `(pop, rel)` schedule into [`PipelineStats`] and the
/// canonical traced sidecar — the same pure functions of the schedule
/// the sequential engine computes incrementally.
fn assemble(
    spec: &PipelineSpec,
    frames: u64,
    pops: &[Vec<u64>],
    rels: &[Vec<u64>],
    rec: &dyn Recorder,
) -> PipelineStats {
    let n = spec.stages.len();
    let f = frames as usize;
    for i in 0..n {
        assert_eq!(pops[i].len(), f, "conservation: stage {i} pops every frame");
        assert_eq!(
            rels[i].len(),
            f,
            "conservation: stage {i} releases every frame"
        );
    }
    let mut has_in = vec![false; n];
    let mut has_out = vec![false; n];
    for e in &spec.edges {
        has_in[e.to] = true;
        has_out[e.from] = true;
    }
    let sink_last = |col: usize| -> u64 {
        (0..n)
            .filter(|&i| !has_out[i])
            .map(|i| rels[i][col])
            .max()
            .unwrap_or(0)
    };
    let makespan = if f == 0 { 0 } else { sink_last(f - 1) };
    let fill = if f == 0 { 0 } else { sink_last(0) };
    let last_entry = if f == 0 {
        0
    } else {
        (0..n)
            .filter(|&i| !has_in[i])
            .map(|i| pops[i][f - 1])
            .max()
            .unwrap_or(0)
    };
    let stages = (0..n)
        .map(|i| {
            let s = spec.stages[i].service_cycles;
            let blocked: u64 = (0..f).map(|j| rels[i][j] - (pops[i][j] + s)).sum();
            let starved: u64 = if has_in[i] {
                (0..f)
                    .map(|j| pops[i][j] - if j == 0 { 0 } else { rels[i][j - 1] })
                    .sum()
            } else {
                0
            };
            StageStats {
                name: spec.stages[i].name.clone(),
                service_cycles: s,
                frames,
                busy_cycles: frames * s,
                blocked_cycles: blocked,
                starved_cycles: starved,
            }
        })
        .collect();

    let traced = rec.enabled();
    let mut events: Vec<TraceEvent> = Vec::new();
    if traced {
        for i in 0..n {
            let track = stage_track(i, &spec.stages[i].name);
            let s = spec.stages[i].service_cycles;
            for j in 0..f {
                let (pop, rel) = (pops[i][j], rels[i][j]);
                let done = pop + s;
                push_span(&mut events, &track, "service", pop, done);
                if rel > done {
                    push_span(&mut events, &track, "blocked_full", done, rel);
                }
                let prev = if j == 0 { 0 } else { rels[i][j - 1] };
                if has_in[i] && pop > prev {
                    push_span(&mut events, &track, "blocked_empty", prev, pop);
                }
            }
        }
    }
    let channels = spec
        .edges
        .iter()
        .map(|e| {
            let (push, pop) = (&rels[e.from], &pops[e.to]);
            let mut chan = Chan {
                cap: e.capacity,
                occ: 0,
                max: 0,
                integral: 0,
                last_t: 0,
            };
            let track = if traced {
                Some(edge_track(e.from, e.to))
            } else {
                None
            };
            let (mut a, mut b) = (0usize, 0usize);
            let mut occ = 0usize;
            // Merge walk over the sorted push (rel_u) and pop (pop_v)
            // times: at each *distinct* timestamp apply every push and
            // pop, then fold the settled occupancy — exactly the
            // sequential Chan discipline and gauge-settling rule.
            while a < f || b < f {
                let t = match (push.get(a), pop.get(b)) {
                    (Some(&x), Some(&y)) => x.min(y),
                    (Some(&x), None) => x,
                    (None, Some(&y)) => y,
                    (None, None) => unreachable!("loop guard"),
                };
                while a < f && push[a] == t {
                    occ += 1;
                    a += 1;
                }
                while b < f && pop[b] == t {
                    occ -= 1;
                    b += 1;
                }
                chan.set(t, occ);
                if let Some(tr) = &track {
                    events.push(TraceEvent {
                        track: tr.clone(),
                        name: "occupancy".into(),
                        ts: t,
                        phase: Phase::Gauge(occ as u64),
                    });
                }
            }
            chan.close(makespan);
            ChannelStats {
                from: e.from,
                to: e.to,
                capacity: chan.cap,
                max_occupancy: chan.max,
                mean_occupancy: if makespan > 0 {
                    chan.integral as f64 / makespan as f64
                } else {
                    0.0
                },
            }
        })
        .collect();
    if traced {
        canonical_sort(&mut events);
        for ev in events {
            rec.record(ev);
        }
    }
    PipelineStats {
        frames_in: frames,
        frames_out: frames,
        makespan_cycles: makespan,
        fill_cycles: fill,
        drain_cycles: makespan - last_entry,
        stages,
        channels,
    }
}

fn push_span(events: &mut Vec<TraceEvent>, track: &str, name: &str, t0: u64, t1: u64) {
    events.push(TraceEvent {
        track: track.to_string(),
        name: name.into(),
        ts: t0,
        phase: Phase::Begin,
    });
    events.push(TraceEvent {
        track: track.to_string(),
        name: name.into(),
        ts: t1,
        phase: Phase::End,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EdgeSpec, StageSpec};

    fn st(name: &str, service: u64) -> StageSpec {
        StageSpec {
            name: name.into(),
            service_cycles: service,
        }
    }

    fn chain(services: &[u64], caps: &[usize]) -> PipelineSpec {
        PipelineSpec::chain(
            services
                .iter()
                .enumerate()
                .map(|(i, &s)| st(&format!("s{i}"), s))
                .collect(),
            caps,
        )
    }

    fn diamond() -> PipelineSpec {
        PipelineSpec {
            stages: vec![st("src", 7), st("a", 13), st("b", 3), st("join", 5)],
            edges: vec![
                EdgeSpec {
                    from: 0,
                    to: 1,
                    capacity: 2,
                },
                EdgeSpec {
                    from: 0,
                    to: 2,
                    capacity: 1,
                },
                EdgeSpec {
                    from: 1,
                    to: 3,
                    capacity: 1,
                },
                EdgeSpec {
                    from: 2,
                    to: 3,
                    capacity: 3,
                },
            ],
        }
    }

    #[test]
    fn flavor_plan_proves_valid_specs_fully_acyclic() {
        let plan = flavor_plan(&diamond());
        assert_eq!(plan, vec![ChannelFlavor::Acyclic; 4]);
    }

    #[test]
    fn flavor_plan_demotes_knotted_edges_to_general() {
        // A deliberately invalid (cyclic) graph: 0 -> 1 -> 0, plus an
        // acyclic tail 1 -> 2 hanging off the knot. Only edges with both
        // endpoints outside the cycle may keep the cheap flavor.
        let spec = PipelineSpec {
            stages: vec![st("a", 1), st("b", 1), st("c", 1)],
            edges: vec![
                EdgeSpec {
                    from: 0,
                    to: 1,
                    capacity: 1,
                },
                EdgeSpec {
                    from: 1,
                    to: 0,
                    capacity: 1,
                },
                EdgeSpec {
                    from: 1,
                    to: 2,
                    capacity: 1,
                },
            ],
        };
        assert_eq!(
            flavor_plan(&spec),
            vec![
                ChannelFlavor::General,
                ChannelFlavor::General,
                ChannelFlavor::General,
            ]
        );
    }

    #[test]
    fn parallel_matches_oracle_on_chains() {
        for frames in [0u64, 1, 2, 17, 64] {
            let s = chain(&[30, 50, 20], &[2, 1]);
            assert_eq!(simulate_parallel(&s, frames), simulate(&s, frames));
        }
    }

    #[test]
    fn parallel_matches_oracle_on_fork_join() {
        let s = diamond();
        assert_eq!(simulate_parallel(&s, 33), simulate(&s, 33));
    }

    #[test]
    fn general_flavor_and_throttle_do_not_change_results() {
        let s = diamond();
        let oracle = simulate(&s, 21);
        for threads in [1usize, 2, 16] {
            for flavor in [ChannelFlavor::Acyclic, ChannelFlavor::General] {
                let cfg = ParallelConfig {
                    threads,
                    flavors: Some(vec![flavor; s.edges.len()]),
                    flush_batch: 3,
                };
                assert_eq!(simulate_parallel_with(&s, 21, &cfg), oracle);
            }
        }
    }

    #[test]
    fn traced_sidecars_are_byte_identical() {
        let s = diamond();
        let (seq_buf, par_buf) = (TraceBuffer::new(), TraceBuffer::new());
        let a = simulate_traced(&s, 19, &seq_buf);
        let b = simulate_parallel_traced(&s, 19, &par_buf);
        assert_eq!(a, b);
        assert_eq!(seq_buf.events(), par_buf.events());
        assert!(!seq_buf.events().is_empty());
    }

    #[test]
    fn debug_engine_runs_both_and_returns_the_oracle() {
        let s = chain(&[5, 9], &[1]);
        let oracle = simulate(&s, 12);
        assert_eq!(simulate_with_engine(EngineKind::Debug, &s, 12), oracle);
        let buf = TraceBuffer::new();
        let stats = simulate_traced_with_engine(EngineKind::Debug, &s, 12, &buf);
        assert_eq!(stats, oracle);
        let direct = TraceBuffer::new();
        simulate_traced(&s, 12, &direct);
        assert_eq!(buf.events(), direct.events());
    }

    #[test]
    fn engine_labels_round_trip() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::from_label(k.label()), Some(k));
        }
        assert_eq!(EngineKind::from_label("both"), None);
    }

    #[test]
    fn timed_channel_publishes_the_frontier_before_the_payload() {
        for flavor in [ChannelFlavor::Acyclic, ChannelFlavor::General] {
            let ch = TimedChannel::new(flavor, 2);
            assert_eq!(ch.flavor(), flavor);
            let (mut tx, mut rx) = (0usize, 0usize);
            ch.send(&mut tx, vec![3, 8]);
            ch.send(&mut tx, vec![9]);
            assert_eq!(ch.recv(&mut rx), vec![3, 8]);
            assert!(ch.frontier() >= 8);
            assert_eq!(ch.recv(&mut rx), vec![9]);
            assert!(ch.frontier() >= 9);
        }
    }
}
