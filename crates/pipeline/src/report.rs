//! Serializable pipeline scheduling reports.
//!
//! A [`PipelineReport`] summarizes one simulated streaming run of a
//! network on a backend: steady-state throughput, fill/drain latency, the
//! bottleneck stage (measured across every branch), per-stage utilization
//! and cluster share, per-channel occupancy on the explicit DAG edges,
//! energy per frame, peak power, the linearized-chain baseline the
//! branch-parallel schedule is compared against and — in
//! [`PipelineMode::Pareto`] — the [`ParetoReport`] frontier of
//! cluster-share allocations. It round-trips through `morph-json` exactly,
//! so it can ride inside a `RunReport` (since schema v4); v2 documents (linear
//! chains only) and v3 documents (no allocation/power fields) still parse
//! and are upgraded on the fly.

use crate::engine::PipelineStats;
use morph_json::{field, field_arr, field_f64, field_str, field_u64, FromJson, ToJson, Value};

/// How a session schedules layers across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Per-layer scoring only (the paper's methodology); no pipeline.
    #[default]
    Off,
    /// Simulate the pipeline over the per-layer decisions as-is.
    Analytic,
    /// Simulate, then greedily re-optimize bottleneck stages with a
    /// latency objective to flatten the pipeline (one stage at a time —
    /// the pre-DAG-aware rebalancer).
    Rebalanced,
    /// DAG-aware rebalancing: the greedy pass first, then cluster share
    /// is shifted between concurrently-live branch stages — non-critical
    /// stages shrink onto fewer clusters (the cheapest mapping that still
    /// meets the bottleneck deadline) and fork/join groups are fitted
    /// into the chip's cluster budget where the reclaimed energy allows.
    /// Guarantees versus [`PipelineMode::Rebalanced`]: throughput never
    /// drops and energy per frame never rises. Peak power is scored
    /// honestly: fitted groups are genuinely co-resident (stage powers
    /// add), which can exceed the greedy schedule's time-multiplexed
    /// derate on branchy nets — cap it with [`PipelineMode::Pareto`]
    /// when power is the constraint.
    DagRebalanced,
    /// Sweep cluster-share allocations over service deadlines, simulate
    /// each with the event engine, and report the Pareto frontier over
    /// (steady throughput, energy per frame, peak power) as a
    /// [`ParetoReport`]. With a power cap only allocations whose peak
    /// power respects the cap enter the frontier, and the scheduled point
    /// is the fastest capped one.
    Pareto {
        /// Optional peak-power cap in mW; `None` sweeps unconstrained.
        power_cap_mw: Option<u64>,
    },
}

impl PipelineMode {
    /// Stable identifier used in serialized reports (the cap of
    /// [`PipelineMode::Pareto`] is carried separately — see
    /// [`PipelineMode::to_json`]).
    pub fn label(self) -> &'static str {
        match self {
            PipelineMode::Off => "off",
            PipelineMode::Analytic => "analytic",
            PipelineMode::Rebalanced => "rebalanced",
            PipelineMode::DagRebalanced => "dag_rebalanced",
            PipelineMode::Pareto { .. } => "pareto",
        }
    }

    /// Inverse of [`PipelineMode::label`] (`"pareto"` parses to an
    /// uncapped sweep).
    pub fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "off" => Ok(PipelineMode::Off),
            "analytic" => Ok(PipelineMode::Analytic),
            "rebalanced" => Ok(PipelineMode::Rebalanced),
            "dag_rebalanced" => Ok(PipelineMode::DagRebalanced),
            "pareto" => Ok(PipelineMode::Pareto { power_cap_mw: None }),
            other => Err(format!("unknown pipeline mode {other:?}")),
        }
    }
}

impl ToJson for PipelineMode {
    /// Simple modes serialize as their label string; a capped Pareto
    /// sweep serializes as `{"kind": "pareto", "power_cap_mw": <mW>}` so
    /// the cap round-trips.
    fn to_json(&self) -> Value {
        match self {
            PipelineMode::Pareto {
                power_cap_mw: Some(cap),
            } => Value::obj([
                ("kind", Value::Str("pareto".to_string())),
                ("power_cap_mw", Value::Int(*cap as i64)),
            ]),
            other => Value::Str(other.label().to_string()),
        }
    }
}

impl FromJson for PipelineMode {
    fn from_json(v: &Value) -> Result<Self, String> {
        if let Some(label) = v.as_str() {
            return PipelineMode::from_label(label);
        }
        match field_str(v, "kind")? {
            "pareto" => Ok(PipelineMode::Pareto {
                power_cap_mw: Some(field_u64(v, "power_cap_mw")?),
            }),
            other => Err(format!("unknown structured pipeline mode {other:?}")),
        }
    }
}

/// One stage of a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage (layer) name.
    pub name: String,
    /// Scheduled per-frame service cycles (after any rebalancing).
    pub service_cycles: u64,
    /// Service cycles of the backend's original per-layer decision.
    pub base_service_cycles: u64,
    /// True if the rebalancer replaced this stage's mapping.
    pub rebalanced: bool,
    /// Busy cycles over the makespan.
    pub utilization: f64,
    /// Cycles spent blocked on a full output channel.
    pub blocked_cycles: u64,
    /// Cycles spent starved on empty input channels (blocked-on-empty;
    /// `0` for source stages and when parsed from a pre-v6 document —
    /// earlier schemas recorded only the blocked-on-full side).
    pub starved_cycles: u64,
    /// Compute clusters the stage is scheduled on (`0` when the schedule
    /// predates allocation-aware reports — pre-v4 documents).
    pub clusters: u64,
}

/// One bounded channel of the scheduled DAG (a [`PipelineReport`] edge).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeReport {
    /// Producer stage index.
    pub from: u64,
    /// Consumer stage index.
    pub to: u64,
    /// Configured capacity in frames.
    pub capacity: u64,
    /// Peak frames simultaneously buffered.
    pub max_occupancy: u64,
    /// Time-weighted mean occupancy over the makespan.
    pub mean_occupancy: f64,
}

/// Streaming-throughput summary of one (backend, network) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Scheduling mode that produced this report.
    pub mode: PipelineMode,
    /// Frames simulated.
    pub frames: u64,
    /// Clock the cycle counts are converted at.
    pub clock_hz: u64,
    /// Cycle at which the last frame exited.
    pub makespan_cycles: u64,
    /// Cycle at which the first frame exited (fill latency).
    pub fill_cycles: u64,
    /// Makespan minus the last frame's entry (drain latency).
    pub drain_cycles: u64,
    /// Steady-state throughput of the branch-parallel DAG schedule in
    /// frames per second.
    pub steady_fps: f64,
    /// Non-pipelined throughput: clock over the summed per-layer latency.
    pub serial_fps: f64,
    /// Steady-state throughput of the same services scheduled as a
    /// linearized chain (the pre-DAG pipeline model) — the baseline the
    /// branch-parallel numbers are compared against.
    pub chain_fps: f64,
    /// Fill latency of the linearized-chain schedule.
    pub chain_fill_cycles: u64,
    /// Name of the bottleneck stage (across all branches).
    pub bottleneck: String,
    /// Energy one frame spends traversing every scheduled stage, in pJ
    /// (`0.0` when parsed from a pre-v4 document).
    pub energy_per_frame_pj: f64,
    /// Peak chip power of the schedule in mW: the hottest
    /// concurrently-live stage group, with over-subscribed groups derated
    /// by their time-multiplexing factor (`0.0` when parsed from a pre-v4
    /// document).
    pub peak_power_mw: f64,
    /// Per-stage detail, in linearized order.
    pub stages: Vec<StageReport>,
    /// The scheduled DAG's bounded channels with occupancy stats.
    pub edges: Vec<EdgeReport>,
    /// The allocation frontier of a [`PipelineMode::Pareto`] sweep
    /// (`None` in every other mode).
    pub pareto: Option<ParetoReport>,
}

/// One non-dominated cluster-share allocation of a Pareto sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Clusters allocated per stage, in linearized stage order.
    pub clusters: Vec<u64>,
    /// Steady-state throughput of the allocation (event-engine measured).
    pub steady_fps: f64,
    /// Energy one frame spends across all stages, in pJ.
    pub energy_per_frame_pj: f64,
    /// Peak power of the allocation in mW (hottest live group).
    pub peak_power_mw: f64,
}

impl ParetoPoint {
    /// True if `self` dominates `other`: at least as fast, at most as
    /// energy-hungry, at most as power-hungry — and strictly better on at
    /// least one axis.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.steady_fps >= other.steady_fps
            && self.energy_per_frame_pj <= other.energy_per_frame_pj
            && self.peak_power_mw <= other.peak_power_mw
            && (self.steady_fps > other.steady_fps
                || self.energy_per_frame_pj < other.energy_per_frame_pj
                || self.peak_power_mw < other.peak_power_mw)
    }
}

/// Drop dominated points and sort the survivors fastest-first (ties by
/// ascending energy, then power). Duplicate points collapse to one.
pub fn pareto_frontier(mut points: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    points.sort_by(|a, b| {
        b.steady_fps
            .total_cmp(&a.steady_fps)
            .then(a.energy_per_frame_pj.total_cmp(&b.energy_per_frame_pj))
            .then(a.peak_power_mw.total_cmp(&b.peak_power_mw))
    });
    points.dedup_by(|a, b| {
        a.steady_fps == b.steady_fps
            && a.energy_per_frame_pj == b.energy_per_frame_pj
            && a.peak_power_mw == b.peak_power_mw
    });
    let keep: Vec<bool> = points
        .iter()
        .map(|p| !points.iter().any(|q| q.dominates(p)))
        .collect();
    points
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect()
}

/// The product of a [`PipelineMode::Pareto`] sweep: every allocation on
/// the (throughput, energy/frame, peak power) frontier that respects the
/// power cap.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoReport {
    /// The peak-power cap the sweep ran under (`None` = unconstrained).
    pub power_cap_mw: Option<u64>,
    /// Distinct allocations the sweep evaluated (frontier and dominated,
    /// capped and uncapped alike).
    pub candidates: u64,
    /// The frontier, fastest point first. Empty iff no evaluated
    /// allocation respected the cap (the schedule then falls back to the
    /// lowest-power allocation).
    pub points: Vec<ParetoPoint>,
}

impl ParetoReport {
    /// The frontier's fastest point (`None` for an empty frontier).
    pub fn best_fps_point(&self) -> Option<&ParetoPoint> {
        self.points.first()
    }
}

impl PipelineReport {
    /// Assemble a report from simulation stats.
    ///
    /// `base_services[i]` is stage `i`'s pre-rebalance latency (equal to
    /// the simulated service unless `rebalanced[i]`); `serial_fps` is
    /// derived from their sum — the throughput of scoring every layer in
    /// isolation, which pipelining can only improve. `clusters[i]` is the
    /// compute-cluster share stage `i` is scheduled on (pass an empty
    /// slice to leave shares unrecorded). The chain-baseline fields
    /// default to the DAG numbers (exact for linear networks); callers
    /// that also simulated the linearized chain override them with
    /// [`PipelineReport::with_chain_baseline`], and energy/power ride in
    /// via [`PipelineReport::with_power`].
    pub fn from_stats(
        stats: &PipelineStats,
        mode: PipelineMode,
        clock_hz: u64,
        base_services: &[u64],
        rebalanced: &[bool],
        clusters: &[usize],
    ) -> Self {
        assert_eq!(stats.stages.len(), base_services.len());
        assert_eq!(stats.stages.len(), rebalanced.len());
        assert!(clusters.is_empty() || clusters.len() == stats.stages.len());
        let serial_cycles: u64 = base_services.iter().sum();
        let stages: Vec<StageReport> = stats
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| StageReport {
                name: s.name.clone(),
                service_cycles: s.service_cycles,
                base_service_cycles: base_services[i],
                rebalanced: rebalanced[i],
                utilization: stats.utilization(i),
                blocked_cycles: s.blocked_cycles,
                starved_cycles: s.starved_cycles,
                clusters: clusters.get(i).map_or(0, |&c| c as u64),
            })
            .collect();
        let edges: Vec<EdgeReport> = stats
            .channels
            .iter()
            .map(|c| EdgeReport {
                from: c.from as u64,
                to: c.to as u64,
                capacity: c.capacity as u64,
                max_occupancy: c.max_occupancy as u64,
                mean_occupancy: c.mean_occupancy,
            })
            .collect();
        let steady_fps = clock_hz as f64 / stats.steady_cycles_per_frame().max(1.0);
        PipelineReport {
            mode,
            frames: stats.frames_out,
            clock_hz,
            makespan_cycles: stats.makespan_cycles,
            fill_cycles: stats.fill_cycles,
            drain_cycles: stats.drain_cycles,
            steady_fps,
            serial_fps: clock_hz as f64 / (serial_cycles.max(1)) as f64,
            chain_fps: steady_fps,
            chain_fill_cycles: stats.fill_cycles,
            bottleneck: stats.stages[stats.bottleneck()].name.clone(),
            energy_per_frame_pj: 0.0,
            peak_power_mw: 0.0,
            stages,
            edges,
            pareto: None,
        }
    }

    /// Record the linearized-chain baseline (steady throughput and fill
    /// latency of the same services scheduled as a chain).
    pub fn with_chain_baseline(mut self, chain_fps: f64, chain_fill_cycles: u64) -> Self {
        self.chain_fps = chain_fps;
        self.chain_fill_cycles = chain_fill_cycles;
        self
    }

    /// Record the schedule's energy-per-frame and peak-power scores.
    pub fn with_power(mut self, energy_per_frame_pj: f64, peak_power_mw: f64) -> Self {
        self.energy_per_frame_pj = energy_per_frame_pj;
        self.peak_power_mw = peak_power_mw;
        self
    }

    /// Attach the allocation frontier of a [`PipelineMode::Pareto`] sweep.
    pub fn with_pareto(mut self, pareto: Option<ParetoReport>) -> Self {
        self.pareto = pareto;
        self
    }

    /// Streaming speedup over per-layer-serial execution.
    pub fn speedup(&self) -> f64 {
        self.steady_fps / self.serial_fps
    }

    /// Fill-latency speedup of the branch-parallel schedule over the
    /// linearized chain (1.0 for linear networks).
    pub fn fill_speedup(&self) -> f64 {
        self.chain_fill_cycles as f64 / (self.fill_cycles.max(1)) as f64
    }

    /// Number of stages the rebalancer changed.
    pub fn rebalanced_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.rebalanced).count()
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.1} frames/s steady ({:.2}x over serial), fill {:.2} ms ({:.2}x vs chain), bottleneck {}",
            self.steady_fps,
            self.speedup(),
            self.fill_cycles as f64 / self.clock_hz as f64 * 1e3,
            self.fill_speedup(),
            self.bottleneck,
        )
    }
}

impl ToJson for StageReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("name", Value::Str(self.name.clone())),
            ("service_cycles", Value::Int(self.service_cycles as i64)),
            (
                "base_service_cycles",
                Value::Int(self.base_service_cycles as i64),
            ),
            ("rebalanced", Value::Bool(self.rebalanced)),
            ("utilization", Value::Float(self.utilization)),
            ("blocked_cycles", Value::Int(self.blocked_cycles as i64)),
            ("starved_cycles", Value::Int(self.starved_cycles as i64)),
            ("clusters", Value::Int(self.clusters as i64)),
        ])
    }
}

impl FromJson for StageReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(StageReport {
            name: field_str(v, "name")?.to_string(),
            service_cycles: field_u64(v, "service_cycles")?,
            base_service_cycles: field_u64(v, "base_service_cycles")?,
            rebalanced: field(v, "rebalanced")?
                .as_bool()
                .ok_or_else(|| "field \"rebalanced\" is not a bool".to_string())?,
            utilization: field_f64(v, "utilization")?,
            blocked_cycles: field_u64(v, "blocked_cycles")?,
            // Pre-v6 stages recorded only the blocked-on-full side of the
            // breakdown: 0 = unrecorded starvation.
            starved_cycles: v.get("starved_cycles").and_then(Value::as_u64).unwrap_or(0),
            // Pre-v4 stages carried no allocation: 0 = unrecorded.
            clusters: v.get("clusters").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

impl ToJson for ParetoPoint {
    fn to_json(&self) -> Value {
        Value::obj([
            (
                "clusters",
                Value::Arr(
                    self.clusters
                        .iter()
                        .map(|&c| Value::Int(c as i64))
                        .collect(),
                ),
            ),
            ("steady_fps", Value::Float(self.steady_fps)),
            (
                "energy_per_frame_pj",
                Value::Float(self.energy_per_frame_pj),
            ),
            ("peak_power_mw", Value::Float(self.peak_power_mw)),
        ])
    }
}

impl FromJson for ParetoPoint {
    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(ParetoPoint {
            clusters: field_arr(v, "clusters")?
                .iter()
                .map(|c| c.as_u64().ok_or("cluster share must be an int"))
                .collect::<Result<Vec<_>, _>>()?,
            steady_fps: field_f64(v, "steady_fps")?,
            energy_per_frame_pj: field_f64(v, "energy_per_frame_pj")?,
            peak_power_mw: field_f64(v, "peak_power_mw")?,
        })
    }
}

impl ToJson for ParetoReport {
    fn to_json(&self) -> Value {
        Value::obj([
            (
                "power_cap_mw",
                self.power_cap_mw
                    .map_or(Value::Null, |cap| Value::Int(cap as i64)),
            ),
            ("candidates", Value::Int(self.candidates as i64)),
            ("points", self.points.to_json()),
        ])
    }
}

impl FromJson for ParetoReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        let power_cap_mw = match field(v, "power_cap_mw")? {
            Value::Null => None,
            cap => Some(cap.as_u64().ok_or("power cap must be an int")?),
        };
        Ok(ParetoReport {
            power_cap_mw,
            candidates: field_u64(v, "candidates")?,
            points: field_arr(v, "points")?
                .iter()
                .map(ParetoPoint::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl ToJson for EdgeReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("from", Value::Int(self.from as i64)),
            ("to", Value::Int(self.to as i64)),
            ("capacity", Value::Int(self.capacity as i64)),
            ("max_occupancy", Value::Int(self.max_occupancy as i64)),
            ("mean_occupancy", Value::Float(self.mean_occupancy)),
        ])
    }
}

impl FromJson for EdgeReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(EdgeReport {
            from: field_u64(v, "from")?,
            to: field_u64(v, "to")?,
            capacity: field_u64(v, "capacity")?,
            max_occupancy: field_u64(v, "max_occupancy")?,
            mean_occupancy: field_f64(v, "mean_occupancy")?,
        })
    }
}

impl ToJson for PipelineReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("mode", self.mode.to_json()),
            ("frames", Value::Int(self.frames as i64)),
            ("clock_hz", Value::Int(self.clock_hz as i64)),
            ("makespan_cycles", Value::Int(self.makespan_cycles as i64)),
            ("fill_cycles", Value::Int(self.fill_cycles as i64)),
            ("drain_cycles", Value::Int(self.drain_cycles as i64)),
            ("steady_fps", Value::Float(self.steady_fps)),
            ("serial_fps", Value::Float(self.serial_fps)),
            ("chain_fps", Value::Float(self.chain_fps)),
            (
                "chain_fill_cycles",
                Value::Int(self.chain_fill_cycles as i64),
            ),
            ("bottleneck", Value::Str(self.bottleneck.clone())),
            (
                "energy_per_frame_pj",
                Value::Float(self.energy_per_frame_pj),
            ),
            ("peak_power_mw", Value::Float(self.peak_power_mw)),
            ("stages", self.stages.to_json()),
            ("edges", self.edges.to_json()),
            ("pareto", self.pareto.to_json()),
        ])
    }
}

impl FromJson for PipelineReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        if v.get("edges").is_some() {
            Self::from_json_v3plus(v)
        } else {
            Self::from_json_v2(v)
        }
    }
}

impl PipelineReport {
    /// Parse a v3 or v4 pipeline section. The v4 additions — per-stage
    /// `clusters`, `energy_per_frame_pj` / `peak_power_mw`, `pareto` —
    /// are optional and default to "unrecorded" (`0`, `0.0`, `None`) so
    /// v3 documents upgrade on the fly.
    fn from_json_v3plus(v: &Value) -> Result<Self, String> {
        let pareto = match v.get("pareto") {
            None | Some(Value::Null) => None,
            Some(p) => Some(ParetoReport::from_json(p)?),
        };
        Ok(PipelineReport {
            mode: PipelineMode::from_json(field(v, "mode")?)?,
            frames: field_u64(v, "frames")?,
            clock_hz: field_u64(v, "clock_hz")?,
            makespan_cycles: field_u64(v, "makespan_cycles")?,
            fill_cycles: field_u64(v, "fill_cycles")?,
            drain_cycles: field_u64(v, "drain_cycles")?,
            steady_fps: field_f64(v, "steady_fps")?,
            serial_fps: field_f64(v, "serial_fps")?,
            chain_fps: field_f64(v, "chain_fps")?,
            chain_fill_cycles: field_u64(v, "chain_fill_cycles")?,
            bottleneck: field_str(v, "bottleneck")?.to_string(),
            energy_per_frame_pj: v
                .get("energy_per_frame_pj")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            peak_power_mw: v
                .get("peak_power_mw")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            stages: field_arr(v, "stages")?
                .iter()
                .map(StageReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            edges: field_arr(v, "edges")?
                .iter()
                .map(EdgeReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            pareto,
        })
    }

    /// Upgrade a schema-v2 pipeline section (linear chain; channel stats
    /// inlined on each stage as `out_capacity` / `max_occupancy` /
    /// `mean_occupancy`): the per-stage channel fields become the chain's
    /// `i -> i + 1` edges, and the chain baseline is the schedule itself.
    fn from_json_v2(v: &Value) -> Result<Self, String> {
        let stage_values = field_arr(v, "stages")?;
        let mut stages = Vec::with_capacity(stage_values.len());
        let mut edges = Vec::new();
        for (i, sv) in stage_values.iter().enumerate() {
            stages.push(StageReport::from_json(sv)?);
            if i + 1 < stage_values.len() {
                edges.push(EdgeReport {
                    from: i as u64,
                    to: i as u64 + 1,
                    capacity: field_u64(sv, "out_capacity")?,
                    max_occupancy: field_u64(sv, "max_occupancy")?,
                    mean_occupancy: field_f64(sv, "mean_occupancy")?,
                });
            }
        }
        let steady_fps = field_f64(v, "steady_fps")?;
        let fill_cycles = field_u64(v, "fill_cycles")?;
        Ok(PipelineReport {
            mode: PipelineMode::from_json(field(v, "mode")?)?,
            frames: field_u64(v, "frames")?,
            clock_hz: field_u64(v, "clock_hz")?,
            makespan_cycles: field_u64(v, "makespan_cycles")?,
            fill_cycles,
            drain_cycles: field_u64(v, "drain_cycles")?,
            steady_fps,
            serial_fps: field_f64(v, "serial_fps")?,
            chain_fps: steady_fps,
            chain_fill_cycles: fill_cycles,
            bottleneck: field_str(v, "bottleneck")?.to_string(),
            energy_per_frame_pj: 0.0,
            peak_power_mw: 0.0,
            stages,
            edges,
            pareto: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, EdgeSpec, PipelineSpec, StageSpec};

    fn sample() -> PipelineReport {
        let spec = PipelineSpec::chain(
            vec![
                StageSpec {
                    name: "conv1".into(),
                    service_cycles: 40,
                },
                StageSpec {
                    name: "conv2".into(),
                    service_cycles: 100,
                },
                StageSpec {
                    name: "conv3".into(),
                    service_cycles: 25,
                },
            ],
            &[2, 2],
        );
        let stats = simulate(&spec, 16);
        PipelineReport::from_stats(
            &stats,
            PipelineMode::Rebalanced,
            1_000_000_000,
            &[40, 130, 25],
            &[false, true, false],
            &[6, 6, 6],
        )
        .with_power(5e9, 120.0)
    }

    fn dag_sample() -> PipelineReport {
        // stem -> {b0, b1} -> head, a real fork/join.
        let spec = PipelineSpec {
            stages: ["stem", "b0", "b1", "head"]
                .iter()
                .zip([10u64, 30, 45, 10])
                .map(|(n, s)| StageSpec {
                    name: (*n).into(),
                    service_cycles: s,
                })
                .collect(),
            edges: vec![
                EdgeSpec {
                    from: 0,
                    to: 1,
                    capacity: 2,
                },
                EdgeSpec {
                    from: 0,
                    to: 2,
                    capacity: 2,
                },
                EdgeSpec {
                    from: 1,
                    to: 3,
                    capacity: 2,
                },
                EdgeSpec {
                    from: 2,
                    to: 3,
                    capacity: 2,
                },
            ],
        };
        let stats = simulate(&spec, 16);
        let chain = PipelineSpec::chain(spec.stages.clone(), &[2, 2, 2]);
        let chain_stats = simulate(&chain, 16);
        PipelineReport::from_stats(
            &stats,
            PipelineMode::Pareto {
                power_cap_mw: Some(250),
            },
            1_000_000_000,
            &[10, 30, 45, 10],
            &[false; 4],
            &[6, 2, 4, 6],
        )
        .with_chain_baseline(
            1e9 / chain_stats.steady_cycles_per_frame(),
            chain_stats.fill_cycles,
        )
        .with_power(3e9, 200.0)
        .with_pareto(Some(ParetoReport {
            power_cap_mw: Some(250),
            candidates: 7,
            points: vec![
                ParetoPoint {
                    clusters: vec![6, 2, 4, 6],
                    steady_fps: 2.0e7,
                    energy_per_frame_pj: 3e9,
                    peak_power_mw: 200.0,
                },
                ParetoPoint {
                    clusters: vec![2, 1, 2, 2],
                    steady_fps: 1.1e7,
                    energy_per_frame_pj: 3.4e9,
                    peak_power_mw: 90.0,
                },
            ],
        }))
    }

    #[test]
    fn pipelining_only_helps() {
        let r = sample();
        assert!(r.steady_fps >= r.serial_fps);
        assert!(r.speedup() >= 1.0);
        assert_eq!(r.bottleneck, "conv2");
        assert_eq!(r.rebalanced_stages(), 1);
        // A chain is its own baseline.
        assert_eq!(r.chain_fps, r.steady_fps);
        assert_eq!(r.chain_fill_cycles, r.fill_cycles);
        assert_eq!(r.edges.len(), 2);
    }

    #[test]
    fn branch_parallel_beats_the_chain_on_fill() {
        let r = dag_sample();
        // Fork/join fill is the critical path (10+45+10), not the serial
        // sum (95).
        assert_eq!(r.fill_cycles, 65);
        assert_eq!(r.chain_fill_cycles, 95);
        assert!(r.fill_speedup() > 1.0);
        // Steady state is bottleneck-limited either way.
        assert!(r.steady_fps >= r.chain_fps - 1e-6);
        assert_eq!(r.edges.len(), 4);
    }

    #[test]
    fn json_round_trip_is_exact() {
        for r in [sample(), dag_sample()] {
            let back =
                PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn frontier_drops_dominated_points_and_sorts() {
        let p = |fps: f64, e: f64, mw: f64| ParetoPoint {
            clusters: vec![1],
            steady_fps: fps,
            energy_per_frame_pj: e,
            peak_power_mw: mw,
        };
        let frontier = pareto_frontier(vec![
            p(10.0, 5.0, 100.0),
            p(8.0, 6.0, 120.0),  // dominated by the first on every axis
            p(8.0, 4.0, 80.0),   // slower but cheaper and cooler: kept
            p(10.0, 5.0, 100.0), // exact duplicate: collapsed
            p(2.0, 9.0, 70.0),   // cooler than everything: kept
        ]);
        assert_eq!(frontier.len(), 3);
        assert_eq!(frontier[0].steady_fps, 10.0);
        assert_eq!(frontier[1].steady_fps, 8.0);
        assert_eq!(frontier[2].peak_power_mw, 70.0);
        for a in &frontier {
            assert!(!frontier.iter().any(|b| b.dominates(a)));
        }
    }

    #[test]
    fn pareto_section_and_capped_mode_round_trip() {
        let r = dag_sample();
        assert_eq!(
            r.mode,
            PipelineMode::Pareto {
                power_cap_mw: Some(250)
            }
        );
        let back =
            PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(r, back);
        let pareto = back.pareto.as_ref().unwrap();
        assert_eq!(pareto.power_cap_mw, Some(250));
        assert_eq!(pareto.candidates, 7);
        assert_eq!(pareto.best_fps_point().unwrap().steady_fps, 2.0e7);
        assert_eq!(back.stages[1].clusters, 2);
        assert_eq!(back.energy_per_frame_pj, 3e9);
        assert_eq!(back.peak_power_mw, 200.0);
    }

    #[test]
    fn v3_documents_upgrade_to_v4_defaults() {
        // Strip the v4 fields from a serialized report: the document a
        // v3 writer would have produced must still parse, with allocation
        // and power marked unrecorded.
        let mut doc = Value::parse(&sample().to_json().pretty()).unwrap();
        let Value::Obj(top) = &mut doc else { panic!() };
        top.remove("energy_per_frame_pj");
        top.remove("peak_power_mw");
        top.remove("pareto");
        let Some(Value::Arr(stages)) = top.get_mut("stages") else {
            panic!()
        };
        for s in stages {
            let Value::Obj(s) = s else { panic!() };
            s.remove("clusters");
        }
        let r = PipelineReport::from_json(&doc).unwrap();
        assert_eq!(r.energy_per_frame_pj, 0.0);
        assert_eq!(r.peak_power_mw, 0.0);
        assert!(r.pareto.is_none());
        assert!(r.stages.iter().all(|s| s.clusters == 0));
        // Everything the v3 document carried survives, and the upgraded
        // report round-trips exactly through the v4 writer.
        assert_eq!(r.steady_fps, sample().steady_fps);
        let back =
            PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn v5_documents_upgrade_to_blocked_breakdown_defaults() {
        // A v5 writer recorded only blocked-on-full: stripping
        // `starved_cycles` must parse with starvation marked unrecorded,
        // and the upgraded report round-trips through the v6 writer.
        let mut doc = Value::parse(&sample().to_json().pretty()).unwrap();
        let Value::Obj(top) = &mut doc else { panic!() };
        let Some(Value::Arr(stages)) = top.get_mut("stages") else {
            panic!()
        };
        for s in stages {
            let Value::Obj(s) = s else { panic!() };
            s.remove("starved_cycles");
        }
        let r = PipelineReport::from_json(&doc).unwrap();
        assert!(r.stages.iter().all(|s| s.starved_cycles == 0));
        assert_eq!(r.steady_fps, sample().steady_fps);
        let back =
            PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn v2_documents_upgrade_to_edges() {
        // A hand-built v2 pipeline section: channel stats ride on stages.
        let text = r#"{
            "mode": "analytic", "frames": 4, "clock_hz": 1000000000,
            "makespan_cycles": 400, "fill_cycles": 70, "drain_cycles": 100,
            "steady_fps": 10000000.0, "serial_fps": 9000000.0,
            "bottleneck": "conv2",
            "stages": [
                {"name": "conv1", "service_cycles": 30,
                 "base_service_cycles": 30, "rebalanced": false,
                 "utilization": 0.3, "blocked_cycles": 0,
                 "out_capacity": 3, "max_occupancy": 2, "mean_occupancy": 1.5},
                {"name": "conv2", "service_cycles": 100,
                 "base_service_cycles": 100, "rebalanced": false,
                 "utilization": 1.0, "blocked_cycles": 0,
                 "out_capacity": 0, "max_occupancy": 0, "mean_occupancy": 0.0}
            ]
        }"#;
        let r = PipelineReport::from_json(&Value::parse(text).unwrap()).unwrap();
        assert_eq!(r.edges.len(), 1);
        assert_eq!((r.edges[0].from, r.edges[0].to), (0, 1));
        assert_eq!(r.edges[0].capacity, 3);
        assert_eq!(r.chain_fps, r.steady_fps);
        assert_eq!(r.chain_fill_cycles, r.fill_cycles);
        // Re-serializing produces a v3 section that round-trips exactly.
        let back =
            PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [
            PipelineMode::Off,
            PipelineMode::Analytic,
            PipelineMode::Rebalanced,
            PipelineMode::DagRebalanced,
            PipelineMode::Pareto { power_cap_mw: None },
        ] {
            assert_eq!(PipelineMode::from_label(m.label()).unwrap(), m);
            assert_eq!(PipelineMode::from_json(&m.to_json()).unwrap(), m);
        }
        // A capped sweep round-trips through the structured form.
        let capped = PipelineMode::Pareto {
            power_cap_mw: Some(450),
        };
        assert_eq!(PipelineMode::from_json(&capped.to_json()).unwrap(), capped);
        assert_eq!(capped.label(), "pareto");
        assert!(PipelineMode::from_label("bogus").is_err());
    }

    #[test]
    fn summary_names_the_bottleneck() {
        assert!(sample().summary().contains("conv2"));
    }
}
