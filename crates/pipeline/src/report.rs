//! Serializable pipeline scheduling reports.
//!
//! A [`PipelineReport`] summarizes one simulated streaming run of a
//! network on a backend: steady-state throughput, fill/drain latency, the
//! bottleneck stage (measured across every branch), per-stage utilization,
//! per-channel occupancy on the explicit DAG edges, and the
//! linearized-chain baseline the branch-parallel schedule is compared
//! against. It round-trips through `morph-json` exactly, so it can ride
//! inside a `RunReport` (schema v3); v2 documents (linear chains only)
//! still parse and are upgraded on the fly.

use crate::engine::PipelineStats;
use morph_json::{field, field_arr, field_f64, field_str, field_u64, FromJson, ToJson, Value};

/// How a session schedules layers across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Per-layer scoring only (the paper's methodology); no pipeline.
    #[default]
    Off,
    /// Simulate the pipeline over the per-layer decisions as-is.
    Analytic,
    /// Simulate, then greedily re-optimize bottleneck stages with a
    /// latency objective to flatten the pipeline.
    Rebalanced,
}

impl PipelineMode {
    /// Stable identifier used in serialized reports.
    pub fn label(self) -> &'static str {
        match self {
            PipelineMode::Off => "off",
            PipelineMode::Analytic => "analytic",
            PipelineMode::Rebalanced => "rebalanced",
        }
    }

    /// Inverse of [`PipelineMode::label`].
    pub fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "off" => Ok(PipelineMode::Off),
            "analytic" => Ok(PipelineMode::Analytic),
            "rebalanced" => Ok(PipelineMode::Rebalanced),
            other => Err(format!("unknown pipeline mode {other:?}")),
        }
    }
}

impl ToJson for PipelineMode {
    fn to_json(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl FromJson for PipelineMode {
    fn from_json(v: &Value) -> Result<Self, String> {
        PipelineMode::from_label(
            v.as_str()
                .ok_or_else(|| "pipeline mode must be a string".to_string())?,
        )
    }
}

/// One stage of a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage (layer) name.
    pub name: String,
    /// Scheduled per-frame service cycles (after any rebalancing).
    pub service_cycles: u64,
    /// Service cycles of the backend's original per-layer decision.
    pub base_service_cycles: u64,
    /// True if the rebalancer replaced this stage's mapping.
    pub rebalanced: bool,
    /// Busy cycles over the makespan.
    pub utilization: f64,
    /// Cycles spent blocked on a full output channel.
    pub blocked_cycles: u64,
}

/// One bounded channel of the scheduled DAG (a [`PipelineReport`] edge).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeReport {
    /// Producer stage index.
    pub from: u64,
    /// Consumer stage index.
    pub to: u64,
    /// Configured capacity in frames.
    pub capacity: u64,
    /// Peak frames simultaneously buffered.
    pub max_occupancy: u64,
    /// Time-weighted mean occupancy over the makespan.
    pub mean_occupancy: f64,
}

/// Streaming-throughput summary of one (backend, network) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Scheduling mode that produced this report.
    pub mode: PipelineMode,
    /// Frames simulated.
    pub frames: u64,
    /// Clock the cycle counts are converted at.
    pub clock_hz: u64,
    /// Cycle at which the last frame exited.
    pub makespan_cycles: u64,
    /// Cycle at which the first frame exited (fill latency).
    pub fill_cycles: u64,
    /// Makespan minus the last frame's entry (drain latency).
    pub drain_cycles: u64,
    /// Steady-state throughput of the branch-parallel DAG schedule in
    /// frames per second.
    pub steady_fps: f64,
    /// Non-pipelined throughput: clock over the summed per-layer latency.
    pub serial_fps: f64,
    /// Steady-state throughput of the same services scheduled as a
    /// linearized chain (the pre-DAG pipeline model) — the baseline the
    /// branch-parallel numbers are compared against.
    pub chain_fps: f64,
    /// Fill latency of the linearized-chain schedule.
    pub chain_fill_cycles: u64,
    /// Name of the bottleneck stage (across all branches).
    pub bottleneck: String,
    /// Per-stage detail, in linearized order.
    pub stages: Vec<StageReport>,
    /// The scheduled DAG's bounded channels with occupancy stats.
    pub edges: Vec<EdgeReport>,
}

impl PipelineReport {
    /// Assemble a report from simulation stats.
    ///
    /// `base_services[i]` is stage `i`'s pre-rebalance latency (equal to
    /// the simulated service unless `rebalanced[i]`); `serial_fps` is
    /// derived from their sum — the throughput of scoring every layer in
    /// isolation, which pipelining can only improve. The chain-baseline
    /// fields default to the DAG numbers (exact for linear networks);
    /// callers that also simulated the linearized chain override them with
    /// [`PipelineReport::with_chain_baseline`].
    pub fn from_stats(
        stats: &PipelineStats,
        mode: PipelineMode,
        clock_hz: u64,
        base_services: &[u64],
        rebalanced: &[bool],
    ) -> Self {
        assert_eq!(stats.stages.len(), base_services.len());
        assert_eq!(stats.stages.len(), rebalanced.len());
        let serial_cycles: u64 = base_services.iter().sum();
        let stages: Vec<StageReport> = stats
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| StageReport {
                name: s.name.clone(),
                service_cycles: s.service_cycles,
                base_service_cycles: base_services[i],
                rebalanced: rebalanced[i],
                utilization: stats.utilization(i),
                blocked_cycles: s.blocked_cycles,
            })
            .collect();
        let edges: Vec<EdgeReport> = stats
            .channels
            .iter()
            .map(|c| EdgeReport {
                from: c.from as u64,
                to: c.to as u64,
                capacity: c.capacity as u64,
                max_occupancy: c.max_occupancy as u64,
                mean_occupancy: c.mean_occupancy,
            })
            .collect();
        let steady_fps = clock_hz as f64 / stats.steady_cycles_per_frame().max(1.0);
        PipelineReport {
            mode,
            frames: stats.frames_out,
            clock_hz,
            makespan_cycles: stats.makespan_cycles,
            fill_cycles: stats.fill_cycles,
            drain_cycles: stats.drain_cycles,
            steady_fps,
            serial_fps: clock_hz as f64 / (serial_cycles.max(1)) as f64,
            chain_fps: steady_fps,
            chain_fill_cycles: stats.fill_cycles,
            bottleneck: stats.stages[stats.bottleneck()].name.clone(),
            stages,
            edges,
        }
    }

    /// Record the linearized-chain baseline (steady throughput and fill
    /// latency of the same services scheduled as a chain).
    pub fn with_chain_baseline(mut self, chain_fps: f64, chain_fill_cycles: u64) -> Self {
        self.chain_fps = chain_fps;
        self.chain_fill_cycles = chain_fill_cycles;
        self
    }

    /// Streaming speedup over per-layer-serial execution.
    pub fn speedup(&self) -> f64 {
        self.steady_fps / self.serial_fps
    }

    /// Fill-latency speedup of the branch-parallel schedule over the
    /// linearized chain (1.0 for linear networks).
    pub fn fill_speedup(&self) -> f64 {
        self.chain_fill_cycles as f64 / (self.fill_cycles.max(1)) as f64
    }

    /// Number of stages the rebalancer changed.
    pub fn rebalanced_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.rebalanced).count()
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.1} frames/s steady ({:.2}x over serial), fill {:.2} ms ({:.2}x vs chain), bottleneck {}",
            self.steady_fps,
            self.speedup(),
            self.fill_cycles as f64 / self.clock_hz as f64 * 1e3,
            self.fill_speedup(),
            self.bottleneck,
        )
    }
}

impl ToJson for StageReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("name", Value::Str(self.name.clone())),
            ("service_cycles", Value::Int(self.service_cycles as i64)),
            (
                "base_service_cycles",
                Value::Int(self.base_service_cycles as i64),
            ),
            ("rebalanced", Value::Bool(self.rebalanced)),
            ("utilization", Value::Float(self.utilization)),
            ("blocked_cycles", Value::Int(self.blocked_cycles as i64)),
        ])
    }
}

impl FromJson for StageReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(StageReport {
            name: field_str(v, "name")?.to_string(),
            service_cycles: field_u64(v, "service_cycles")?,
            base_service_cycles: field_u64(v, "base_service_cycles")?,
            rebalanced: field(v, "rebalanced")?
                .as_bool()
                .ok_or_else(|| "field \"rebalanced\" is not a bool".to_string())?,
            utilization: field_f64(v, "utilization")?,
            blocked_cycles: field_u64(v, "blocked_cycles")?,
        })
    }
}

impl ToJson for EdgeReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("from", Value::Int(self.from as i64)),
            ("to", Value::Int(self.to as i64)),
            ("capacity", Value::Int(self.capacity as i64)),
            ("max_occupancy", Value::Int(self.max_occupancy as i64)),
            ("mean_occupancy", Value::Float(self.mean_occupancy)),
        ])
    }
}

impl FromJson for EdgeReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(EdgeReport {
            from: field_u64(v, "from")?,
            to: field_u64(v, "to")?,
            capacity: field_u64(v, "capacity")?,
            max_occupancy: field_u64(v, "max_occupancy")?,
            mean_occupancy: field_f64(v, "mean_occupancy")?,
        })
    }
}

impl ToJson for PipelineReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("mode", self.mode.to_json()),
            ("frames", Value::Int(self.frames as i64)),
            ("clock_hz", Value::Int(self.clock_hz as i64)),
            ("makespan_cycles", Value::Int(self.makespan_cycles as i64)),
            ("fill_cycles", Value::Int(self.fill_cycles as i64)),
            ("drain_cycles", Value::Int(self.drain_cycles as i64)),
            ("steady_fps", Value::Float(self.steady_fps)),
            ("serial_fps", Value::Float(self.serial_fps)),
            ("chain_fps", Value::Float(self.chain_fps)),
            (
                "chain_fill_cycles",
                Value::Int(self.chain_fill_cycles as i64),
            ),
            ("bottleneck", Value::Str(self.bottleneck.clone())),
            ("stages", self.stages.to_json()),
            ("edges", self.edges.to_json()),
        ])
    }
}

impl FromJson for PipelineReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        if v.get("edges").is_some() {
            Self::from_json_v3(v)
        } else {
            Self::from_json_v2(v)
        }
    }
}

impl PipelineReport {
    fn from_json_v3(v: &Value) -> Result<Self, String> {
        Ok(PipelineReport {
            mode: PipelineMode::from_json(field(v, "mode")?)?,
            frames: field_u64(v, "frames")?,
            clock_hz: field_u64(v, "clock_hz")?,
            makespan_cycles: field_u64(v, "makespan_cycles")?,
            fill_cycles: field_u64(v, "fill_cycles")?,
            drain_cycles: field_u64(v, "drain_cycles")?,
            steady_fps: field_f64(v, "steady_fps")?,
            serial_fps: field_f64(v, "serial_fps")?,
            chain_fps: field_f64(v, "chain_fps")?,
            chain_fill_cycles: field_u64(v, "chain_fill_cycles")?,
            bottleneck: field_str(v, "bottleneck")?.to_string(),
            stages: field_arr(v, "stages")?
                .iter()
                .map(StageReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            edges: field_arr(v, "edges")?
                .iter()
                .map(EdgeReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Upgrade a schema-v2 pipeline section (linear chain; channel stats
    /// inlined on each stage as `out_capacity` / `max_occupancy` /
    /// `mean_occupancy`): the per-stage channel fields become the chain's
    /// `i -> i + 1` edges, and the chain baseline is the schedule itself.
    fn from_json_v2(v: &Value) -> Result<Self, String> {
        let stage_values = field_arr(v, "stages")?;
        let mut stages = Vec::with_capacity(stage_values.len());
        let mut edges = Vec::new();
        for (i, sv) in stage_values.iter().enumerate() {
            stages.push(StageReport::from_json(sv)?);
            if i + 1 < stage_values.len() {
                edges.push(EdgeReport {
                    from: i as u64,
                    to: i as u64 + 1,
                    capacity: field_u64(sv, "out_capacity")?,
                    max_occupancy: field_u64(sv, "max_occupancy")?,
                    mean_occupancy: field_f64(sv, "mean_occupancy")?,
                });
            }
        }
        let steady_fps = field_f64(v, "steady_fps")?;
        let fill_cycles = field_u64(v, "fill_cycles")?;
        Ok(PipelineReport {
            mode: PipelineMode::from_json(field(v, "mode")?)?,
            frames: field_u64(v, "frames")?,
            clock_hz: field_u64(v, "clock_hz")?,
            makespan_cycles: field_u64(v, "makespan_cycles")?,
            fill_cycles,
            drain_cycles: field_u64(v, "drain_cycles")?,
            steady_fps,
            serial_fps: field_f64(v, "serial_fps")?,
            chain_fps: steady_fps,
            chain_fill_cycles: fill_cycles,
            bottleneck: field_str(v, "bottleneck")?.to_string(),
            stages,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, EdgeSpec, PipelineSpec, StageSpec};

    fn sample() -> PipelineReport {
        let spec = PipelineSpec::chain(
            vec![
                StageSpec {
                    name: "conv1".into(),
                    service_cycles: 40,
                },
                StageSpec {
                    name: "conv2".into(),
                    service_cycles: 100,
                },
                StageSpec {
                    name: "conv3".into(),
                    service_cycles: 25,
                },
            ],
            &[2, 2],
        );
        let stats = simulate(&spec, 16);
        PipelineReport::from_stats(
            &stats,
            PipelineMode::Rebalanced,
            1_000_000_000,
            &[40, 130, 25],
            &[false, true, false],
        )
    }

    fn dag_sample() -> PipelineReport {
        // stem -> {b0, b1} -> head, a real fork/join.
        let spec = PipelineSpec {
            stages: ["stem", "b0", "b1", "head"]
                .iter()
                .zip([10u64, 30, 45, 10])
                .map(|(n, s)| StageSpec {
                    name: (*n).into(),
                    service_cycles: s,
                })
                .collect(),
            edges: vec![
                EdgeSpec {
                    from: 0,
                    to: 1,
                    capacity: 2,
                },
                EdgeSpec {
                    from: 0,
                    to: 2,
                    capacity: 2,
                },
                EdgeSpec {
                    from: 1,
                    to: 3,
                    capacity: 2,
                },
                EdgeSpec {
                    from: 2,
                    to: 3,
                    capacity: 2,
                },
            ],
        };
        let stats = simulate(&spec, 16);
        let chain = PipelineSpec::chain(spec.stages.clone(), &[2, 2, 2]);
        let chain_stats = simulate(&chain, 16);
        PipelineReport::from_stats(
            &stats,
            PipelineMode::Analytic,
            1_000_000_000,
            &[10, 30, 45, 10],
            &[false; 4],
        )
        .with_chain_baseline(
            1e9 / chain_stats.steady_cycles_per_frame(),
            chain_stats.fill_cycles,
        )
    }

    #[test]
    fn pipelining_only_helps() {
        let r = sample();
        assert!(r.steady_fps >= r.serial_fps);
        assert!(r.speedup() >= 1.0);
        assert_eq!(r.bottleneck, "conv2");
        assert_eq!(r.rebalanced_stages(), 1);
        // A chain is its own baseline.
        assert_eq!(r.chain_fps, r.steady_fps);
        assert_eq!(r.chain_fill_cycles, r.fill_cycles);
        assert_eq!(r.edges.len(), 2);
    }

    #[test]
    fn branch_parallel_beats_the_chain_on_fill() {
        let r = dag_sample();
        // Fork/join fill is the critical path (10+45+10), not the serial
        // sum (95).
        assert_eq!(r.fill_cycles, 65);
        assert_eq!(r.chain_fill_cycles, 95);
        assert!(r.fill_speedup() > 1.0);
        // Steady state is bottleneck-limited either way.
        assert!(r.steady_fps >= r.chain_fps - 1e-6);
        assert_eq!(r.edges.len(), 4);
    }

    #[test]
    fn json_round_trip_is_exact() {
        for r in [sample(), dag_sample()] {
            let back =
                PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn v2_documents_upgrade_to_edges() {
        // A hand-built v2 pipeline section: channel stats ride on stages.
        let text = r#"{
            "mode": "analytic", "frames": 4, "clock_hz": 1000000000,
            "makespan_cycles": 400, "fill_cycles": 70, "drain_cycles": 100,
            "steady_fps": 10000000.0, "serial_fps": 9000000.0,
            "bottleneck": "conv2",
            "stages": [
                {"name": "conv1", "service_cycles": 30,
                 "base_service_cycles": 30, "rebalanced": false,
                 "utilization": 0.3, "blocked_cycles": 0,
                 "out_capacity": 3, "max_occupancy": 2, "mean_occupancy": 1.5},
                {"name": "conv2", "service_cycles": 100,
                 "base_service_cycles": 100, "rebalanced": false,
                 "utilization": 1.0, "blocked_cycles": 0,
                 "out_capacity": 0, "max_occupancy": 0, "mean_occupancy": 0.0}
            ]
        }"#;
        let r = PipelineReport::from_json(&Value::parse(text).unwrap()).unwrap();
        assert_eq!(r.edges.len(), 1);
        assert_eq!((r.edges[0].from, r.edges[0].to), (0, 1));
        assert_eq!(r.edges[0].capacity, 3);
        assert_eq!(r.chain_fps, r.steady_fps);
        assert_eq!(r.chain_fill_cycles, r.fill_cycles);
        // Re-serializing produces a v3 section that round-trips exactly.
        let back =
            PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [
            PipelineMode::Off,
            PipelineMode::Analytic,
            PipelineMode::Rebalanced,
        ] {
            assert_eq!(PipelineMode::from_label(m.label()).unwrap(), m);
        }
        assert!(PipelineMode::from_label("bogus").is_err());
    }

    #[test]
    fn summary_names_the_bottleneck() {
        assert!(sample().summary().contains("conv2"));
    }
}
