//! Serializable pipeline scheduling reports.
//!
//! A [`PipelineReport`] summarizes one simulated streaming run of a
//! network on a backend: steady-state throughput, fill/drain latency, the
//! bottleneck stage, and per-stage utilization/occupancy. It round-trips
//! through `morph-json` exactly, so it can ride inside a `RunReport`.

use crate::engine::PipelineStats;
use morph_json::{field, field_arr, field_f64, field_str, field_u64, FromJson, ToJson, Value};

/// How a session schedules layers across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Per-layer scoring only (the paper's methodology); no pipeline.
    #[default]
    Off,
    /// Simulate the pipeline over the per-layer decisions as-is.
    Analytic,
    /// Simulate, then greedily re-optimize bottleneck stages with a
    /// latency objective to flatten the pipeline.
    Rebalanced,
}

impl PipelineMode {
    /// Stable identifier used in serialized reports.
    pub fn label(self) -> &'static str {
        match self {
            PipelineMode::Off => "off",
            PipelineMode::Analytic => "analytic",
            PipelineMode::Rebalanced => "rebalanced",
        }
    }

    /// Inverse of [`PipelineMode::label`].
    pub fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "off" => Ok(PipelineMode::Off),
            "analytic" => Ok(PipelineMode::Analytic),
            "rebalanced" => Ok(PipelineMode::Rebalanced),
            other => Err(format!("unknown pipeline mode {other:?}")),
        }
    }
}

impl ToJson for PipelineMode {
    fn to_json(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl FromJson for PipelineMode {
    fn from_json(v: &Value) -> Result<Self, String> {
        PipelineMode::from_label(
            v.as_str()
                .ok_or_else(|| "pipeline mode must be a string".to_string())?,
        )
    }
}

/// One stage of a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage (layer) name.
    pub name: String,
    /// Scheduled per-frame service cycles (after any rebalancing).
    pub service_cycles: u64,
    /// Service cycles of the backend's original per-layer decision.
    pub base_service_cycles: u64,
    /// True if the rebalancer replaced this stage's mapping.
    pub rebalanced: bool,
    /// Busy cycles over the makespan.
    pub utilization: f64,
    /// Cycles spent blocked on a full output channel.
    pub blocked_cycles: u64,
    /// Output channel capacity (0 for the last stage: it exits the chip).
    pub out_capacity: u64,
    /// Peak occupancy of the output channel.
    pub max_occupancy: u64,
    /// Time-weighted mean occupancy of the output channel.
    pub mean_occupancy: f64,
}

/// Streaming-throughput summary of one (backend, network) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Scheduling mode that produced this report.
    pub mode: PipelineMode,
    /// Frames simulated.
    pub frames: u64,
    /// Clock the cycle counts are converted at.
    pub clock_hz: u64,
    /// Cycle at which the last frame exited.
    pub makespan_cycles: u64,
    /// Cycle at which the first frame exited (fill latency).
    pub fill_cycles: u64,
    /// Makespan minus the last frame's entry (drain latency).
    pub drain_cycles: u64,
    /// Steady-state throughput in frames per second.
    pub steady_fps: f64,
    /// Non-pipelined throughput: clock over the summed per-layer latency.
    pub serial_fps: f64,
    /// Name of the bottleneck stage.
    pub bottleneck: String,
    /// Per-stage detail, in dataflow order.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// Assemble a report from simulation stats.
    ///
    /// `base_services[i]` is stage `i`'s pre-rebalance latency (equal to
    /// the simulated service unless `rebalanced[i]`); `serial_fps` is
    /// derived from their sum — the throughput of scoring every layer in
    /// isolation, which pipelining can only improve.
    pub fn from_stats(
        stats: &PipelineStats,
        mode: PipelineMode,
        clock_hz: u64,
        base_services: &[u64],
        rebalanced: &[bool],
    ) -> Self {
        assert_eq!(stats.stages.len(), base_services.len());
        assert_eq!(stats.stages.len(), rebalanced.len());
        let serial_cycles: u64 = base_services.iter().sum();
        let stages: Vec<StageReport> = stats
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let chan = stats.channels.get(i);
                StageReport {
                    name: s.name.clone(),
                    service_cycles: s.service_cycles,
                    base_service_cycles: base_services[i],
                    rebalanced: rebalanced[i],
                    utilization: stats.utilization(i),
                    blocked_cycles: s.blocked_cycles,
                    out_capacity: chan.map_or(0, |c| c.capacity as u64),
                    max_occupancy: chan.map_or(0, |c| c.max_occupancy as u64),
                    mean_occupancy: chan.map_or(0.0, |c| c.mean_occupancy),
                }
            })
            .collect();
        PipelineReport {
            mode,
            frames: stats.frames_out,
            clock_hz,
            makespan_cycles: stats.makespan_cycles,
            fill_cycles: stats.fill_cycles,
            drain_cycles: stats.drain_cycles,
            steady_fps: clock_hz as f64 / stats.steady_cycles_per_frame().max(1.0),
            serial_fps: clock_hz as f64 / (serial_cycles.max(1)) as f64,
            bottleneck: stats.stages[stats.bottleneck()].name.clone(),
            stages,
        }
    }

    /// Streaming speedup over per-layer-serial execution.
    pub fn speedup(&self) -> f64 {
        self.steady_fps / self.serial_fps
    }

    /// Number of stages the rebalancer changed.
    pub fn rebalanced_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.rebalanced).count()
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.1} frames/s steady ({:.2}x over serial), fill {:.2} ms, bottleneck {}",
            self.steady_fps,
            self.speedup(),
            self.fill_cycles as f64 / self.clock_hz as f64 * 1e3,
            self.bottleneck,
        )
    }
}

impl ToJson for StageReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("name", Value::Str(self.name.clone())),
            ("service_cycles", Value::Int(self.service_cycles as i64)),
            (
                "base_service_cycles",
                Value::Int(self.base_service_cycles as i64),
            ),
            ("rebalanced", Value::Bool(self.rebalanced)),
            ("utilization", Value::Float(self.utilization)),
            ("blocked_cycles", Value::Int(self.blocked_cycles as i64)),
            ("out_capacity", Value::Int(self.out_capacity as i64)),
            ("max_occupancy", Value::Int(self.max_occupancy as i64)),
            ("mean_occupancy", Value::Float(self.mean_occupancy)),
        ])
    }
}

impl FromJson for StageReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(StageReport {
            name: field_str(v, "name")?.to_string(),
            service_cycles: field_u64(v, "service_cycles")?,
            base_service_cycles: field_u64(v, "base_service_cycles")?,
            rebalanced: field(v, "rebalanced")?
                .as_bool()
                .ok_or_else(|| "field \"rebalanced\" is not a bool".to_string())?,
            utilization: field_f64(v, "utilization")?,
            blocked_cycles: field_u64(v, "blocked_cycles")?,
            out_capacity: field_u64(v, "out_capacity")?,
            max_occupancy: field_u64(v, "max_occupancy")?,
            mean_occupancy: field_f64(v, "mean_occupancy")?,
        })
    }
}

impl ToJson for PipelineReport {
    fn to_json(&self) -> Value {
        Value::obj([
            ("mode", self.mode.to_json()),
            ("frames", Value::Int(self.frames as i64)),
            ("clock_hz", Value::Int(self.clock_hz as i64)),
            ("makespan_cycles", Value::Int(self.makespan_cycles as i64)),
            ("fill_cycles", Value::Int(self.fill_cycles as i64)),
            ("drain_cycles", Value::Int(self.drain_cycles as i64)),
            ("steady_fps", Value::Float(self.steady_fps)),
            ("serial_fps", Value::Float(self.serial_fps)),
            ("bottleneck", Value::Str(self.bottleneck.clone())),
            ("stages", self.stages.to_json()),
        ])
    }
}

impl FromJson for PipelineReport {
    fn from_json(v: &Value) -> Result<Self, String> {
        Ok(PipelineReport {
            mode: PipelineMode::from_json(field(v, "mode")?)?,
            frames: field_u64(v, "frames")?,
            clock_hz: field_u64(v, "clock_hz")?,
            makespan_cycles: field_u64(v, "makespan_cycles")?,
            fill_cycles: field_u64(v, "fill_cycles")?,
            drain_cycles: field_u64(v, "drain_cycles")?,
            steady_fps: field_f64(v, "steady_fps")?,
            serial_fps: field_f64(v, "serial_fps")?,
            bottleneck: field_str(v, "bottleneck")?.to_string(),
            stages: field_arr(v, "stages")?
                .iter()
                .map(StageReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, PipelineSpec, StageSpec};

    fn sample() -> PipelineReport {
        let spec = PipelineSpec {
            stages: vec![
                StageSpec {
                    name: "conv1".into(),
                    service_cycles: 40,
                },
                StageSpec {
                    name: "conv2".into(),
                    service_cycles: 100,
                },
                StageSpec {
                    name: "conv3".into(),
                    service_cycles: 25,
                },
            ],
            capacities: vec![2, 2],
        };
        let stats = simulate(&spec, 16);
        PipelineReport::from_stats(
            &stats,
            PipelineMode::Rebalanced,
            1_000_000_000,
            &[40, 130, 25],
            &[false, true, false],
        )
    }

    #[test]
    fn pipelining_only_helps() {
        let r = sample();
        assert!(r.steady_fps >= r.serial_fps);
        assert!(r.speedup() >= 1.0);
        assert_eq!(r.bottleneck, "conv2");
        assert_eq!(r.rebalanced_stages(), 1);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = sample();
        let back =
            PipelineReport::from_json(&Value::parse(&r.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [
            PipelineMode::Off,
            PipelineMode::Analytic,
            PipelineMode::Rebalanced,
        ] {
            assert_eq!(PipelineMode::from_label(m.label()).unwrap(), m);
        }
        assert!(PipelineMode::from_label("bogus").is_err());
    }

    #[test]
    fn summary_names_the_bottleneck() {
        assert!(sample().summary().contains("conv2"));
    }
}
