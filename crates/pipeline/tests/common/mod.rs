//! Shared seeded-pseudo-random spec generators for the integration
//! suites (the workspace's xorshift harness): property tests sweep them
//! against closed-form oracles, the differential suite against the
//! parallel engine.

use morph_pipeline::{EdgeSpec, PipelineSpec, StageSpec};
use morph_tensor::rng::XorShift as Rng;

/// A random tandem chain: 1–7 stages, service 1–49, capacities 1–4.
pub fn arb_chain(rng: &mut Rng) -> PipelineSpec {
    let n = rng.range(1, 8);
    PipelineSpec::chain(
        (0..n)
            .map(|i| StageSpec {
                name: format!("s{i}"),
                service_cycles: rng.range(1, 50) as u64,
            })
            .collect(),
        &(0..n.saturating_sub(1))
            .map(|_| rng.range(1, 5))
            .collect::<Vec<_>>(),
    )
}

/// A random fork/join DAG: every stage after the first draws 1–3 in-edges
/// from random earlier stages, so the sweep covers joins, forks (a
/// producer drawn twice by different consumers), multi-source and
/// multi-sink shapes.
pub fn arb_dag(rng: &mut Rng) -> PipelineSpec {
    let n = rng.range(2, 9);
    let stages = (0..n)
        .map(|i| StageSpec {
            name: format!("s{i}"),
            service_cycles: rng.range(1, 50) as u64,
        })
        .collect();
    let mut edges: Vec<EdgeSpec> = Vec::new();
    for to in 1..n {
        // A few stages become fresh sources.
        if rng.range(0, 5) == 0 && to + 1 < n {
            continue;
        }
        let fanin = rng.range(1, 1 + to.min(3));
        for _ in 0..fanin {
            let from = rng.range(0, to);
            if !edges.iter().any(|e| e.from == from && e.to == to) {
                edges.push(EdgeSpec {
                    from,
                    to,
                    capacity: rng.range(1, 5),
                });
            }
        }
    }
    PipelineSpec { stages, edges }
}
