//! Property tests on the discrete-event engine, swept over seeded
//! pseudo-random pipelines (the workspace's xorshift harness).
//!
//! The strongest check is an independent oracle: the blocking-after-service
//! recurrence for tandem queues with deterministic service times and
//! finite buffers. The event engine and the recurrence are entirely
//! separate formulations of the same semantics, so agreement across the
//! sweep pins both down. DAG pipelines are swept separately against
//! structural invariants, the sharpest being that the first frame is never
//! back-pressured: fill latency equals the service-weighted critical path
//! exactly.

use morph_pipeline::{simulate, PipelineSpec};
use morph_tensor::rng::XorShift as Rng;

mod common;
use common::{arb_chain, arb_dag};

/// Closed-form recurrence for chain semantics:
/// * `pop[i][j]` — stage `i` starts frame `j` when its input has arrived
///   and the stage has released frame `j - 1`;
/// * `rel[i][j]` — stage `i` releases (pushes) frame `j` when service is
///   done and the output channel has a slot, i.e. the consumer has popped
///   frame `j - cap`.
///
/// Returns every frame's exit time from the last stage.
fn oracle_exits(spec: &PipelineSpec, frames: usize) -> Vec<u64> {
    let n = spec.stages.len();
    let cap_of = |i: usize| {
        spec.edges
            .iter()
            .find(|e| e.from == i && e.to == i + 1)
            .expect("chain edge")
            .capacity
    };
    let mut pop = vec![vec![0u64; frames]; n];
    let mut rel = vec![vec![0u64; frames]; n];
    for j in 0..frames {
        for i in 0..n {
            let input_ready = if i == 0 { 0 } else { rel[i - 1][j] };
            let stage_free = if j == 0 { 0 } else { rel[i][j - 1] };
            pop[i][j] = input_ready.max(stage_free);
            let done = pop[i][j] + spec.stages[i].service_cycles;
            rel[i][j] = if i + 1 < n {
                let cap = cap_of(i);
                if j >= cap {
                    done.max(pop[i + 1][j - cap])
                } else {
                    done
                }
            } else {
                done
            };
        }
    }
    rel[n - 1].clone()
}

#[test]
fn engine_matches_the_blocking_recurrence() {
    let mut rng = Rng::new(0x9199);
    for case in 0..400 {
        let spec = arb_chain(&mut rng);
        let frames = rng.range(1, 40);
        let stats = simulate(&spec, frames as u64);
        let exits = oracle_exits(&spec, frames);
        assert_eq!(
            stats.makespan_cycles,
            *exits.last().unwrap(),
            "case {case}: makespan, spec {spec:?} frames {frames}"
        );
        assert_eq!(
            stats.fill_cycles, exits[0],
            "case {case}: fill latency, spec {spec:?} frames {frames}"
        );
    }
}

#[test]
fn conservation_and_busy_time_bounds() {
    let mut rng = Rng::new(2026);
    for case in 0..400 {
        let spec = arb_chain(&mut rng);
        let frames = rng.range(1, 40) as u64;
        let stats = simulate(&spec, frames);

        // Frames in == frames out, at every stage.
        assert_eq!(stats.frames_in, frames, "case {case}");
        assert_eq!(stats.frames_out, frames, "case {case}");
        for s in &stats.stages {
            assert_eq!(s.frames, frames, "case {case}: stage {}", s.name);
            // A stage is a serial server: busy time is exactly
            // frames x service and never exceeds the makespan.
            assert_eq!(s.busy_cycles, frames * s.service_cycles, "case {case}");
            assert!(
                s.busy_cycles <= stats.makespan_cycles,
                "case {case}: stage {} busy {} > makespan {}",
                s.name,
                s.busy_cycles,
                stats.makespan_cycles
            );
        }

        // Channels respect their bounds.
        for (ci, c) in stats.channels.iter().enumerate() {
            assert!(c.max_occupancy <= c.capacity, "case {case}: channel {ci}");
            assert!(
                c.mean_occupancy <= c.capacity as f64 + 1e-9,
                "case {case}: channel {ci}"
            );
        }
    }
}

#[test]
fn pipelining_never_loses_to_serial_execution() {
    let mut rng = Rng::new(7);
    for case in 0..400 {
        let spec = arb_chain(&mut rng);
        let frames = rng.range(2, 40) as u64;
        let stats = simulate(&spec, frames);
        let serial = spec.serial_cycles_per_frame();
        let max_service = spec.stages.iter().map(|s| s.service_cycles).max().unwrap();

        // Steady state is no slower than running layers back to back, and
        // no faster than the bottleneck stage permits.
        let steady = stats.steady_cycles_per_frame();
        assert!(
            steady <= serial as f64 + 1e-9,
            "case {case}: steady {steady} > serial {serial}"
        );
        assert!(
            steady >= max_service as f64 - 1e-9,
            "case {case}: steady {steady} < bottleneck {max_service}"
        );

        // Whole-run bounds: can't beat the bottleneck, can't lose to
        // fully serial execution.
        assert!(stats.makespan_cycles >= frames * max_service);
        assert!(stats.makespan_cycles <= frames * serial);
    }
}

#[test]
fn dag_first_frame_fills_along_the_critical_path() {
    // The first frame is never back-pressured (nothing is ever ahead of
    // it), so its exit time — the fill latency — is exactly the
    // service-weighted critical path, for any DAG and any capacities.
    let mut rng = Rng::new(0xDA6);
    for case in 0..400 {
        let spec = arb_dag(&mut rng);
        let frames = rng.range(1, 30) as u64;
        let stats = simulate(&spec, frames);
        assert_eq!(
            stats.fill_cycles,
            spec.critical_path_cycles(),
            "case {case}: spec {spec:?}"
        );
    }
}

#[test]
fn dag_conservation_bottleneck_and_channel_bounds() {
    let mut rng = Rng::new(0xBEEF);
    for case in 0..400 {
        let spec = arb_dag(&mut rng);
        let frames = rng.range(2, 30) as u64;
        let stats = simulate(&spec, frames);
        assert_eq!(stats.frames_out, frames, "case {case}");
        for s in &stats.stages {
            assert_eq!(s.frames, frames, "case {case}: stage {}", s.name);
            assert_eq!(s.busy_cycles, frames * s.service_cycles, "case {case}");
        }
        for (ci, c) in stats.channels.iter().enumerate() {
            assert!(c.max_occupancy <= c.capacity, "case {case}: channel {ci}");
        }
        // Whole-run bounds: every stage is a serial server, so the run
        // can't beat the bottleneck; and it can't lose to fully serial
        // execution. (The *measured* steady window can dip below the
        // bottleneck on multi-sink DAGs — completion is the min over
        // sinks, which shifts the first/last-exit window — so the
        // throughput bounds are asserted on the makespan.)
        let max_service = spec.stages.iter().map(|s| s.service_cycles).max().unwrap();
        assert!(
            stats.makespan_cycles >= frames * max_service,
            "case {case}: makespan beats the bottleneck"
        );
        assert!(
            stats.makespan_cycles <= frames * spec.serial_cycles_per_frame(),
            "case {case}"
        );
    }
}

#[test]
fn dag_fill_never_loses_to_linearization() {
    // Scheduling the same stages as a chain can only lengthen the fill:
    // the chain's first frame traverses the serial sum, the DAG's only
    // its critical path.
    let mut rng = Rng::new(0x51AB);
    for case in 0..200 {
        let spec = arb_dag(&mut rng);
        let frames = rng.range(2, 30) as u64;
        let chain = PipelineSpec::chain(
            spec.stages.clone(),
            &vec![2; spec.stages.len().saturating_sub(1)],
        );
        let dag_stats = simulate(&spec, frames);
        let chain_stats = simulate(&chain, frames);
        assert!(
            dag_stats.fill_cycles <= chain_stats.fill_cycles,
            "case {case}: dag fill {} > chain fill {}",
            dag_stats.fill_cycles,
            chain_stats.fill_cycles
        );
        assert_eq!(
            chain_stats.fill_cycles,
            chain.serial_cycles_per_frame(),
            "case {case}: a chain fills in the serial sum"
        );
    }
}
