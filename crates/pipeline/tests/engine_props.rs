//! Property tests on the discrete-event engine, swept over seeded
//! pseudo-random pipelines (the workspace's xorshift harness).
//!
//! The strongest check is an independent oracle: the blocking-after-service
//! recurrence for tandem queues with deterministic service times and
//! finite buffers. The event engine and the recurrence are entirely
//! separate formulations of the same semantics, so agreement across the
//! sweep pins both down.

use morph_pipeline::{simulate, PipelineSpec, StageSpec};
use morph_tensor::rng::XorShift as Rng;

fn arb_spec(rng: &mut Rng) -> PipelineSpec {
    let n = rng.range(1, 8);
    PipelineSpec {
        stages: (0..n)
            .map(|i| StageSpec {
                name: format!("s{i}"),
                service_cycles: rng.range(1, 50) as u64,
            })
            .collect(),
        capacities: (0..n.saturating_sub(1)).map(|_| rng.range(1, 5)).collect(),
    }
}

/// Closed-form recurrence for the same semantics:
/// * `pop[i][j]` — stage `i` starts frame `j` when its input has arrived
///   and the stage has released frame `j - 1`;
/// * `rel[i][j]` — stage `i` releases (pushes) frame `j` when service is
///   done and the output channel has a slot, i.e. the consumer has popped
///   frame `j - cap`.
///
/// Returns every frame's exit time from the last stage.
fn oracle_exits(spec: &PipelineSpec, frames: usize) -> Vec<u64> {
    let n = spec.stages.len();
    let mut pop = vec![vec![0u64; frames]; n];
    let mut rel = vec![vec![0u64; frames]; n];
    for j in 0..frames {
        for i in 0..n {
            let input_ready = if i == 0 { 0 } else { rel[i - 1][j] };
            let stage_free = if j == 0 { 0 } else { rel[i][j - 1] };
            pop[i][j] = input_ready.max(stage_free);
            let done = pop[i][j] + spec.stages[i].service_cycles;
            rel[i][j] = if i + 1 < n {
                let cap = spec.capacities[i];
                if j >= cap {
                    done.max(pop[i + 1][j - cap])
                } else {
                    done
                }
            } else {
                done
            };
        }
    }
    rel[n - 1].clone()
}

#[test]
fn engine_matches_the_blocking_recurrence() {
    let mut rng = Rng::new(0x9199);
    for case in 0..400 {
        let spec = arb_spec(&mut rng);
        let frames = rng.range(1, 40);
        let stats = simulate(&spec, frames as u64);
        let exits = oracle_exits(&spec, frames);
        assert_eq!(
            stats.makespan_cycles,
            *exits.last().unwrap(),
            "case {case}: makespan, spec {spec:?} frames {frames}"
        );
        assert_eq!(
            stats.fill_cycles, exits[0],
            "case {case}: fill latency, spec {spec:?} frames {frames}"
        );
    }
}

#[test]
fn conservation_and_busy_time_bounds() {
    let mut rng = Rng::new(2026);
    for case in 0..400 {
        let spec = arb_spec(&mut rng);
        let frames = rng.range(1, 40) as u64;
        let stats = simulate(&spec, frames);

        // Frames in == frames out, at every stage.
        assert_eq!(stats.frames_in, frames, "case {case}");
        assert_eq!(stats.frames_out, frames, "case {case}");
        for s in &stats.stages {
            assert_eq!(s.frames, frames, "case {case}: stage {}", s.name);
            // A stage is a serial server: busy time is exactly
            // frames x service and never exceeds the makespan.
            assert_eq!(s.busy_cycles, frames * s.service_cycles, "case {case}");
            assert!(
                s.busy_cycles <= stats.makespan_cycles,
                "case {case}: stage {} busy {} > makespan {}",
                s.name,
                s.busy_cycles,
                stats.makespan_cycles
            );
        }

        // Channels respect their bounds.
        for (ci, c) in stats.channels.iter().enumerate() {
            assert!(c.max_occupancy <= c.capacity, "case {case}: channel {ci}");
            assert!(
                c.mean_occupancy <= c.capacity as f64 + 1e-9,
                "case {case}: channel {ci}"
            );
        }
    }
}

#[test]
fn pipelining_never_loses_to_serial_execution() {
    let mut rng = Rng::new(7);
    for case in 0..400 {
        let spec = arb_spec(&mut rng);
        let frames = rng.range(2, 40) as u64;
        let stats = simulate(&spec, frames);
        let serial = spec.serial_cycles_per_frame();
        let max_service = spec.stages.iter().map(|s| s.service_cycles).max().unwrap();

        // Steady state is no slower than running layers back to back, and
        // no faster than the bottleneck stage permits.
        let steady = stats.steady_cycles_per_frame();
        assert!(
            steady <= serial as f64 + 1e-9,
            "case {case}: steady {steady} > serial {serial}"
        );
        assert!(
            steady >= max_service as f64 - 1e-9,
            "case {case}: steady {steady} < bottleneck {max_service}"
        );

        // Whole-run bounds: can't beat the bottleneck, can't lose to
        // fully serial execution.
        assert!(stats.makespan_cycles >= frames * max_service);
        assert!(stats.makespan_cycles <= frames * serial);
    }
}
