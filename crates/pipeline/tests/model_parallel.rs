//! Model-checked properties of the parallel engine's synchronization
//! layer. The [`TimedChannel`], the stage workers and the admission
//! throttle are all built on `morph-check` shims, so the checker
//! explores the *shipping* protocol, not a model of it:
//!
//! * send/recv/time-advance interleavings of the timed channel, both
//!   flavors, exhaustively within bounds — the frontier contract
//!   (`frontier() >=` every delivered timestamp) holds on every
//!   schedule;
//! * deadlock-freedom of the full fork/join engine run, including under
//!   a 1-permit admission throttle (the flush-before-blocking-recv
//!   discipline is exactly what the detector would catch if broken);
//! * seeded mutants of the channel protocol — dropping the frontier's
//!   single-writer discipline, or gating slot access on the frontier
//!   instead of the item semaphore — caught by the lost-update and
//!   data-race rules respectively, each with a replayable certificate.

use morph_check::sync::{AtomicCell, RaceSlot};
use morph_check::{explore, explore_replay, Config, ViolationKind};
use morph_pipeline::{
    simulate, simulate_parallel_with, ChannelFlavor, EdgeSpec, ParallelConfig, PipelineSpec,
    StageSpec, TimedChannel,
};

fn cfg() -> Config {
    Config {
        max_exhaustive: 4000,
        samples: 400,
        ..Config::default()
    }
    .env_scaled()
}

fn diamond() -> PipelineSpec {
    let stage = |name: &str, service_cycles: u64| StageSpec {
        name: name.into(),
        service_cycles,
    };
    let edge = |from: usize, to: usize| EdgeSpec {
        from,
        to,
        capacity: 2,
    };
    PipelineSpec {
        stages: vec![
            stage("src", 3),
            stage("left", 5),
            stage("right", 2),
            stage("join", 4),
        ],
        edges: vec![edge(0, 1), edge(0, 2), edge(1, 3), edge(2, 3)],
    }
}

// -------------------------------------------------------------------------
// Timed channel: send / recv / time-advance interleavings.

#[test]
fn timed_channel_frontier_contract_holds_on_every_schedule() {
    // One producer streams two batches of rising timestamps through a
    // capacity-1 channel; the consumer advances its local clock past
    // each batch and checks the published frontier covers everything it
    // has observed — without any lock. Explored for both flavors.
    for flavor in [ChannelFlavor::Acyclic, ChannelFlavor::General] {
        let report = explore(&cfg(), || {
            let ch = TimedChannel::new(flavor, 1);
            morph_check::thread::scope(|s| {
                s.spawn(|| {
                    let mut cursor = 0;
                    ch.send(&mut cursor, vec![1, 2]);
                    ch.send(&mut cursor, vec![3, 5]);
                });
                s.spawn(|| {
                    let mut cursor = 0;
                    let mut now = 0u64;
                    for _ in 0..2 {
                        let batch = ch.recv(&mut cursor);
                        assert!(batch.windows(2).all(|w| w[0] <= w[1]));
                        now = now.max(*batch.last().unwrap());
                        assert!(
                            ch.frontier() >= now,
                            "frontier {} fell behind a delivered timestamp {now}",
                            ch.frontier()
                        );
                    }
                    assert_eq!(now, 5, "both batches delivered in order");
                });
            });
        });
        report.assert_ok();
        assert!(
            report.schedules_explored > 1,
            "{flavor:?}: interleavings must actually fork"
        );
    }
}

#[test]
fn timed_channel_backpressure_is_deadlock_free() {
    // Capacity 1, three batches: the producer must block on the full
    // channel and be woken by the consumer's pops — any protocol slip
    // here (missed release, wrong semaphore order) is exactly what the
    // checker's deadlock rule reports, so a clean report is a
    // deadlock-freedom proof within the explored bounds.
    for flavor in [ChannelFlavor::Acyclic, ChannelFlavor::General] {
        let report = explore(&cfg(), || {
            let ch = TimedChannel::new(flavor, 1);
            morph_check::thread::scope(|s| {
                s.spawn(|| {
                    let mut cursor = 0;
                    for t in 1..=3u64 {
                        ch.send(&mut cursor, vec![t]);
                    }
                });
                s.spawn(|| {
                    let mut cursor = 0;
                    let got: Vec<u64> = (0..3).map(|_| ch.recv(&mut cursor)[0]).collect();
                    assert_eq!(got, vec![1, 2, 3], "{flavor:?}: FIFO order");
                });
            });
        });
        report.assert_ok();
    }
}

// -------------------------------------------------------------------------
// Whole-engine deadlock freedom on a fork/join under the model.

#[test]
fn fork_join_engine_run_is_deadlock_free_under_the_model() {
    // The real engine — four stage workers over a diamond, per-frame
    // credits, outbox flushing — explored under the model scheduler.
    // flush_batch: 1 maximizes channel traffic (worst case for the
    // protocol); results must match the sequential oracle on every
    // schedule.
    let spec = diamond();
    let oracle = simulate(&spec, 2);
    let cfg = Config {
        max_exhaustive: 300,
        samples: 30,
        ..Config::default()
    }
    .env_scaled();
    let report = explore(&cfg, || {
        let stats = simulate_parallel_with(
            &spec,
            2,
            &ParallelConfig {
                threads: 4,
                flavors: None,
                flush_batch: 1,
            },
        );
        assert!(stats == oracle, "parallel run must match the oracle");
    });
    report.assert_ok();
    assert!(
        report.schedules_explored + report.schedules_pruned >= 100,
        "acceptance: a real spread of schedules, got {} (+{} pruned-equivalent)",
        report.schedules_explored,
        report.schedules_pruned
    );
}

#[test]
fn admission_throttle_with_one_permit_is_deadlock_free() {
    // threads: 1 forces every blocking channel op to park the single
    // admission permit; forgetting a single release-before-block would
    // wedge the whole diamond, which the deadlock rule reports exactly.
    let spec = diamond();
    let oracle = simulate(&spec, 2);
    let cfg = Config {
        max_exhaustive: 300,
        samples: 30,
        ..Config::default()
    }
    .env_scaled();
    let report = explore(&cfg, || {
        let stats = simulate_parallel_with(
            &spec,
            2,
            &ParallelConfig {
                threads: 1,
                flavors: None,
                flush_batch: 1,
            },
        );
        assert!(stats == oracle, "throttled run must match the oracle");
    });
    report.assert_ok();
}

// -------------------------------------------------------------------------
// Seeded mutants: protocol slips caught by their owning rule, each with
// a replayable certificate.

fn assert_caught(report: &morph_check::Report, kind: ViolationKind) -> Vec<usize> {
    let v = report
        .first_violation()
        .unwrap_or_else(|| panic!("mutant must be caught, report: {report:?}"));
    assert_eq!(v.kind, kind, "wrong owning rule: {v}");
    assert!(
        v.schedule.len() == v.ops.len() && !format!("{v}").is_empty(),
        "certificate must be printable"
    );
    v.schedule.clone()
}

#[test]
fn mutant_consumer_ack_store_breaks_the_single_writer_frontier() {
    // The shipping frontier is single-writer: only the producer stores,
    // consumers only load, so a plain store is safe. This mutant has the
    // consumer "acknowledge" progress by writing its own clock back into
    // the same cell — a racing load/store pair that can silently discard
    // the producer's published horizon. Caught by the lost-update rule.
    let mutant = || {
        let frontier = AtomicCell::new(0u64);
        morph_check::thread::scope(|s| {
            s.spawn(|| frontier.store(5));
            s.spawn(|| {
                let seen = frontier.load();
                frontier.store(seen.max(3));
            });
        });
    };
    let report = explore(&cfg(), mutant);
    let cert = assert_caught(&report, ViolationKind::LostUpdate);
    let replay = explore_replay(&cert, mutant);
    assert_caught(&replay, ViolationKind::LostUpdate);
}

#[test]
fn mutant_gating_on_the_frontier_instead_of_the_item_semaphore_races() {
    // The frontier is published *before* the payload, so it may run
    // ahead of slot visibility; only the item semaphore hands the
    // consumer a happens-before edge to the producer's put. This mutant
    // drops the semaphore and gates the take on the frontier value —
    // exactly the "frontier says the data is there" misreading the
    // channel's docs warn about. Caught as a data race on the slot.
    let mutant = || {
        let slot = RaceSlot::empty();
        let frontier = AtomicCell::new(0u64);
        morph_check::thread::scope(|s| {
            s.spawn(|| {
                frontier.store(7);
                slot.put(vec![7u64]);
            });
            s.spawn(|| {
                if frontier.load() >= 7 {
                    let _ = slot.take();
                }
            });
        });
    };
    let report = explore(&cfg(), mutant);
    let cert = assert_caught(&report, ViolationKind::DataRace);
    let replay = explore_replay(&cert, mutant);
    assert_caught(&replay, ViolationKind::DataRace);
}
