//! Differential suite: the parallel engine against the sequential
//! oracle, bit for bit, over the seeded random-spec generators the
//! property suite already sweeps.
//!
//! Every comparison is full-struct equality on [`PipelineStats`] (which
//! includes the float-valued channel means — the engines must compute
//! *identical* arithmetic, not merely close results) and, for the traced
//! cases, event-list equality on the canonical sidecar.
//!
//! Worker counts sweep {1, 2, 8} by default; setting
//! `MORPH_TEST_THREADS` pins a single count instead, which is how the
//! CI matrix runs this suite once per thread configuration.

use morph_pipeline::{
    simulate, simulate_parallel_traced_with, simulate_parallel_with, simulate_traced,
    simulate_with_engine, ChannelFlavor, EngineKind, ParallelConfig, PipelineSpec,
};
use morph_tensor::rng::XorShift as Rng;
use morph_trace::TraceBuffer;

mod common;
use common::{arb_chain, arb_dag};

/// Worker counts to sweep: `MORPH_TEST_THREADS` pins one, else {1, 2, 8}.
fn thread_sweep() -> Vec<usize> {
    match std::env::var("MORPH_TEST_THREADS") {
        Ok(v) => vec![v
            .trim()
            .parse::<usize>()
            .expect("MORPH_TEST_THREADS")
            .max(1)],
        Err(_) => vec![1, 2, 8],
    }
}

/// The planner's flavors plus the all-general fallback, sized for `spec`.
fn flavor_overrides(spec: &PipelineSpec) -> Vec<Option<Vec<ChannelFlavor>>> {
    vec![None, Some(vec![ChannelFlavor::General; spec.edges.len()])]
}

#[test]
fn random_chains_match_the_oracle_bit_for_bit() {
    let mut rng = Rng::new(0xD1FF);
    for case in 0..120 {
        let spec = arb_chain(&mut rng);
        let frames = rng.range(0, 40) as u64;
        let flush_batch = rng.range(1, 6);
        let oracle = simulate(&spec, frames);
        for threads in thread_sweep() {
            let par = simulate_parallel_with(
                &spec,
                frames,
                &ParallelConfig {
                    threads,
                    flavors: None,
                    flush_batch,
                },
            );
            assert!(
                par == oracle,
                "case {case} ({threads} thread(s), flush {flush_batch}): \
                 parallel diverged on {spec:?} frames {frames}\n\
                 oracle:   {oracle:?}\nparallel: {par:?}"
            );
        }
    }
}

#[test]
fn random_dags_match_the_oracle_bit_for_bit() {
    let mut rng = Rng::new(0xD1FF_DA60);
    for case in 0..120 {
        let spec = arb_dag(&mut rng);
        let frames = rng.range(0, 30) as u64;
        let flush_batch = rng.range(1, 6);
        let oracle = simulate(&spec, frames);
        for threads in thread_sweep() {
            for flavors in flavor_overrides(&spec) {
                let par = simulate_parallel_with(
                    &spec,
                    frames,
                    &ParallelConfig {
                        threads,
                        flavors: flavors.clone(),
                        flush_batch,
                    },
                );
                assert!(
                    par == oracle,
                    "case {case} ({threads} thread(s), flavors {flavors:?}, \
                     flush {flush_batch}): parallel diverged on {spec:?} frames {frames}\n\
                     oracle:   {oracle:?}\nparallel: {par:?}"
                );
            }
        }
    }
}

#[test]
fn random_dag_traced_sidecars_are_bit_identical() {
    let mut rng = Rng::new(0x7AACE);
    for case in 0..40 {
        let spec = arb_dag(&mut rng);
        let frames = rng.range(1, 20) as u64;
        let seq_buf = TraceBuffer::new();
        let oracle = simulate_traced(&spec, frames, &seq_buf);
        for threads in thread_sweep() {
            let par_buf = TraceBuffer::new();
            let par = simulate_parallel_traced_with(
                &spec,
                frames,
                &par_buf,
                &ParallelConfig {
                    threads,
                    flavors: None,
                    flush_batch: rng.range(1, 6),
                },
            );
            assert!(par == oracle, "case {case}: stats diverged");
            assert_eq!(
                seq_buf.events(),
                par_buf.events(),
                "case {case} ({threads} thread(s)): sidecars diverged on {spec:?}"
            );
        }
    }
}

#[test]
fn debug_engine_bit_checks_random_dags() {
    // EngineKind::Debug runs both engines and asserts agreement
    // internally — a sweep through it is the whole differential check in
    // one call per case (worker count comes from MORPH_TEST_THREADS via
    // ParallelConfig::default).
    let mut rng = Rng::new(0xDB6);
    for _ in 0..60 {
        let spec = arb_dag(&mut rng);
        let frames = rng.range(0, 30) as u64;
        let stats = simulate_with_engine(EngineKind::Debug, &spec, frames);
        assert_eq!(stats.frames_out, frames);
    }
}
