//! Reference 3D convolution (the paper's Algorithm 1), with stride and
//! zero padding.
//!
//! This is the golden model every other component is validated against:
//! the tiled convolution in [`crate::tiled`] and the functional hardware
//! simulator in `morph-hw` must produce bit-identical outputs.

use crate::shape::ConvShape;
use crate::tensor::{Activations, Filters};

/// Accumulator element: wide enough for 8-bit operand products over any
/// evaluated layer (§IV-B1 sizes psums at `2P + log2(RSTC)` ≤ 32 bits).
pub type Acc = i32;

/// Direct 3D convolution per Algorithm 1, generalized with stride/padding.
///
/// Inputs are indexed `[c][f][h][w]`, filters `[k][c][t][r][s]`; the output
/// is indexed `[k][f'][h'][w']` and holds full-precision accumulators.
///
/// # Panics
///
/// Panics if the tensor shapes disagree with `shape`.
pub fn conv3d_reference(
    shape: &ConvShape,
    input: &Activations<i8>,
    filters: &Filters<i8>,
) -> Activations<Acc> {
    check_shapes(shape, input, filters);
    let (ho, wo, fo) = (shape.h_out(), shape.w_out(), shape.f_out());
    let mut out = Activations::<Acc>::zeros(shape.k, fo, ho, wo);
    for k in 0..shape.k {
        for f in 0..fo {
            for h in 0..ho {
                for w in 0..wo {
                    let mut acc: Acc = 0;
                    for c in 0..shape.c {
                        for t in 0..shape.t {
                            let fi = (f * shape.stride_f + t) as isize - shape.pad_f as isize;
                            for r in 0..shape.r {
                                let hi = (h * shape.stride + r) as isize - shape.pad as isize;
                                for s in 0..shape.s {
                                    let wi = (w * shape.stride + s) as isize - shape.pad as isize;
                                    let x = input.get_padded(c, fi, hi, wi) as Acc;
                                    let wgt = filters.get(k, c, t, r, s) as Acc;
                                    acc += x * wgt;
                                }
                            }
                        }
                    }
                    out.set(k, f, h, w, acc);
                }
            }
        }
    }
    out
}

/// Validates tensor shapes against a [`ConvShape`].
pub fn check_shapes(shape: &ConvShape, input: &Activations<i8>, filters: &Filters<i8>) {
    assert_eq!(
        input.shape(),
        (shape.c, shape.f, shape.h, shape.w),
        "input tensor does not match layer shape"
    );
    assert_eq!(
        filters.shape(),
        (shape.k, shape.c, shape.t, shape.r, shape.s),
        "filter tensor does not match layer shape"
    );
}

/// Deterministic pseudo-random activations for a layer (seeded; used by
/// tests, examples and the functional hardware simulator's validation).
pub fn synth_input(shape: &ConvShape, seed: u64) -> Activations<i8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Activations::from_fn(shape.c, shape.f, shape.h, shape.w, |_, _, _, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) & 0xFF) as u8 as i8
    })
}

/// Deterministic pseudo-random filters for a layer.
pub fn synth_filters(shape: &ConvShape, seed: u64) -> Filters<i8> {
    let mut state = seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(3);
    Filters::from_fn(
        shape.k,
        shape.c,
        shape.t,
        shape.r,
        shape.s,
        |_, _, _, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 37) & 0xFF) as u8 as i8
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1×1×1 filter with weight 1 is the identity.
    #[test]
    fn identity_conv() {
        let sh = ConvShape::new_3d(4, 4, 2, 1, 1, 1, 1, 1);
        let input = synth_input(&sh, 7);
        let mut filters = Filters::<i8>::zeros(1, 1, 1, 1, 1);
        filters.set(0, 0, 0, 0, 0, 1);
        let out = conv3d_reference(&sh, &input, &filters);
        for f in 0..2 {
            for h in 0..4 {
                for w in 0..4 {
                    assert_eq!(out.get(0, f, h, w), input.get(0, f, h, w) as Acc);
                }
            }
        }
    }

    /// All-ones filter computes a box sum over the receptive field.
    #[test]
    fn box_sum() {
        let sh = ConvShape::new_3d(3, 3, 3, 1, 1, 3, 3, 3);
        let input = Activations::from_fn(1, 3, 3, 3, |_, _, _, _| 1i8);
        let filters = Filters::from_fn(1, 1, 3, 3, 3, |_, _, _, _, _| 1i8);
        let out = conv3d_reference(&sh, &input, &filters);
        assert_eq!(out.shape(), (1, 1, 1, 1));
        assert_eq!(out.get(0, 0, 0, 0), 27);
    }

    /// Zero padding contributes zero to edge outputs.
    #[test]
    fn padding_contributes_zero() {
        let sh = ConvShape::new_2d(2, 2, 1, 1, 3, 3).with_pad(1, 0);
        let input = Activations::from_fn(1, 1, 2, 2, |_, _, _, _| 1i8);
        let filters = Filters::from_fn(1, 1, 1, 3, 3, |_, _, _, _, _| 1i8);
        let out = conv3d_reference(&sh, &input, &filters);
        assert_eq!(out.shape(), (1, 1, 2, 2));
        // Every output sees exactly the four real pixels.
        for h in 0..2 {
            for w in 0..2 {
                assert_eq!(out.get(0, 0, h, w), 4);
            }
        }
    }

    /// Stride-2 downsamples the output grid.
    #[test]
    fn strided_output_dims() {
        let sh = ConvShape::new_2d(8, 8, 1, 2, 3, 3).with_stride(2, 1);
        let input = synth_input(&sh, 1);
        let filters = synth_filters(&sh, 2);
        let out = conv3d_reference(&sh, &input, &filters);
        assert_eq!(out.shape(), (2, 1, 3, 3));
    }

    /// A hand-computed 1-D temporal example.
    #[test]
    fn temporal_dot_product() {
        let sh = ConvShape::new_3d(1, 1, 4, 1, 1, 1, 1, 2);
        let input = Activations::from_fn(1, 4, 1, 1, |_, f, _, _| (f as i8) + 1); // 1,2,3,4
        let mut filters = Filters::<i8>::zeros(1, 1, 2, 1, 1);
        filters.set(0, 0, 0, 0, 0, 10);
        filters.set(0, 0, 1, 0, 0, 1);
        let out = conv3d_reference(&sh, &input, &filters);
        assert_eq!(out.shape(), (1, 3, 1, 1));
        assert_eq!(out.get(0, 0, 0, 0), 12); // 1·10 + 2·1
        assert_eq!(out.get(0, 1, 0, 0), 23);
        assert_eq!(out.get(0, 2, 0, 0), 34);
    }

    /// Synthetic generators are deterministic in the seed.
    #[test]
    fn synth_deterministic() {
        let sh = ConvShape::new_3d(5, 5, 3, 2, 3, 3, 3, 2);
        assert_eq!(
            synth_input(&sh, 9).as_slice(),
            synth_input(&sh, 9).as_slice()
        );
        assert_ne!(
            synth_input(&sh, 9).as_slice(),
            synth_input(&sh, 10).as_slice()
        );
        assert_eq!(
            synth_filters(&sh, 9).as_slice(),
            synth_filters(&sh, 9).as_slice()
        );
    }
}
