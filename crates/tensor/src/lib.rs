//! # morph-tensor
//!
//! Dense-tensor substrate for the Morph reproduction: convolution shapes,
//! the reference 3D convolution (the paper's Algorithm 1), tiled
//! convolution with configurable loop orders, pooling, and requantization.
//!
//! Everything downstream — the analytical dataflow model, the optimizer and
//! the functional hardware simulator — validates against
//! [`conv::conv3d_reference`].
//!
//! ```
//! use morph_tensor::prelude::*;
//!
//! // C3D's first layer: 3×16×112×112 input, 64 3×3×3 filters, pad 1.
//! let layer = ConvShape::new_3d(112, 112, 16, 3, 64, 3, 3, 3).with_pad(1, 1);
//! assert_eq!(layer.h_out(), 112);
//! assert_eq!(layer.maccs(), 64 * 16 * 112 * 112 * 27 * 3);
//! ```

pub mod conv;
pub mod order;
pub mod pool;
pub mod quant;
pub mod rng;
pub mod shape;
pub mod tensor;
pub mod tiled;

/// Convenient glob import of the common types.
pub mod prelude {
    pub use crate::conv::{conv3d_reference, synth_filters, synth_input, Acc};
    pub use crate::order::{Dim, LoopOrder};
    pub use crate::pool::{maxpool3d, PoolShape};
    pub use crate::quant::{choose_shift, requantize_relu};
    pub use crate::shape::{ConvShape, ACT_BYTES, WGT_BYTES};
    pub use crate::tensor::{Activations, Filters};
    pub use crate::tiled::{conv3d_tiled, layer_extents, Tile};
}
