//! Loop-nest vocabulary: the five tiled dimensions and loop orders.
//!
//! The paper tiles the `K`, `C`, `F`, `H` and `W` dimensions (§II-D; `R`,
//! `S`, `T` are small and never tiled) and writes loop orders as lists like
//! `[WHCKF]`, outermost dimension first (§II-E). Outer loop orders are
//! written upper-case, inner loop orders lower-case; both share this
//! representation.

use std::fmt;
use std::str::FromStr;

/// A tileable convolution dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// Output width.
    W,
    /// Output height.
    H,
    /// Input channels (the accumulation dimension).
    C,
    /// Filters / output channels.
    K,
    /// Output frames (temporal).
    F,
}

impl Dim {
    /// All five tiled dimensions.
    pub const ALL: [Dim; 5] = [Dim::W, Dim::H, Dim::C, Dim::K, Dim::F];

    /// True if this dimension indexes input activations (`W`,`H`,`C`,`F`).
    pub fn input_relevant(self) -> bool {
        !matches!(self, Dim::K)
    }

    /// True if this dimension indexes filters (`C`,`K`).
    pub fn weight_relevant(self) -> bool {
        matches!(self, Dim::C | Dim::K)
    }

    /// True if this dimension indexes partial sums (`W`,`H`,`K`,`F`).
    pub fn psum_relevant(self) -> bool {
        !matches!(self, Dim::C)
    }

    /// Upper-case letter used in outer loop orders.
    pub fn letter(self) -> char {
        match self {
            Dim::W => 'W',
            Dim::H => 'H',
            Dim::C => 'C',
            Dim::K => 'K',
            Dim::F => 'F',
        }
    }

    fn from_letter(ch: char) -> Option<Dim> {
        match ch.to_ascii_uppercase() {
            'W' => Some(Dim::W),
            'H' => Some(Dim::H),
            'C' => Some(Dim::C),
            'K' => Some(Dim::K),
            'F' => Some(Dim::F),
            _ => None,
        }
    }
}

/// A permutation of the five tiled dimensions, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopOrder {
    dims: [Dim; 5],
}

/// Error parsing a [`LoopOrder`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLoopOrderError(String);

impl fmt::Display for ParseLoopOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid loop order {:?}: must be a permutation of WHCKF",
            self.0
        )
    }
}

impl std::error::Error for ParseLoopOrderError {}

impl LoopOrder {
    /// Construct from dimensions, outermost first.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a permutation of all five dimensions.
    pub fn new(dims: [Dim; 5]) -> Self {
        let mut seen = [false; 5];
        for d in dims {
            let i = Dim::ALL.iter().position(|&x| x == d).unwrap();
            assert!(!seen[i], "loop order repeats dimension {d:?}");
            seen[i] = true;
        }
        Self { dims }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> [Dim; 5] {
        self.dims
    }

    /// The innermost (fastest-changing) dimension.
    pub fn innermost(&self) -> Dim {
        self.dims[4]
    }

    /// The outermost (slowest-changing) dimension.
    pub fn outermost(&self) -> Dim {
        self.dims[0]
    }

    /// Position of a dimension, `0` = outermost … `4` = innermost.
    pub fn position(&self, d: Dim) -> usize {
        self.dims
            .iter()
            .position(|&x| x == d)
            .expect("all dims present")
    }

    /// All `5! = 120` loop orders.
    pub fn all() -> Vec<LoopOrder> {
        let mut out = Vec::with_capacity(120);
        permute(&mut Dim::ALL.to_vec(), 0, &mut out);
        out
    }

    /// Paper's Morph_base outer loop order `[WHCKF]` (§IV-A3).
    pub fn base_outer() -> Self {
        "WHCKF".parse().unwrap()
    }

    /// Paper's Morph_base inner loop order `[cfwhk]` (§IV-A3).
    pub fn base_inner() -> Self {
        "cfwhk".parse().unwrap()
    }

    /// Format in lower case (inner-loop-order convention).
    pub fn to_lowercase(self) -> String {
        self.dims
            .iter()
            .map(|d| d.letter().to_ascii_lowercase())
            .collect()
    }
}

fn permute(dims: &mut Vec<Dim>, start: usize, out: &mut Vec<LoopOrder>) {
    if start == dims.len() {
        out.push(LoopOrder::new([
            dims[0], dims[1], dims[2], dims[3], dims[4],
        ]));
        return;
    }
    for i in start..dims.len() {
        dims.swap(start, i);
        permute(dims, start + 1, out);
        dims.swap(start, i);
    }
}

impl morph_json::ToJson for LoopOrder {
    fn to_json(&self) -> morph_json::Value {
        morph_json::Value::Str(self.to_string())
    }
}

impl morph_json::FromJson for LoopOrder {
    fn from_json(v: &morph_json::Value) -> Result<Self, String> {
        v.as_str()
            .ok_or_else(|| "loop order must be a string".to_string())?
            .parse()
            .map_err(|e: ParseLoopOrderError| e.to_string())
    }
}

impl fmt::Display for LoopOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in self.dims {
            write!(f, "{}", d.letter())?;
        }
        Ok(())
    }
}

impl FromStr for LoopOrder {
    type Err = ParseLoopOrderError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let trimmed = text.trim_matches(|ch| ch == '[' || ch == ']');
        if trimmed.len() != 5 {
            return Err(ParseLoopOrderError(text.to_string()));
        }
        let mut dims = [Dim::W; 5];
        let mut seen = [false; 5];
        for (i, ch) in trimmed.chars().enumerate() {
            let d = Dim::from_letter(ch).ok_or_else(|| ParseLoopOrderError(text.to_string()))?;
            let j = Dim::ALL.iter().position(|&x| x == d).unwrap();
            if seen[j] {
                return Err(ParseLoopOrderError(text.to_string()));
            }
            seen[j] = true;
            dims[i] = d;
        }
        Ok(LoopOrder { dims })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let o: LoopOrder = "WHCKF".parse().unwrap();
        assert_eq!(o.to_string(), "WHCKF");
        assert_eq!(o.outermost(), Dim::W);
        assert_eq!(o.innermost(), Dim::F);
        let i: LoopOrder = "cfwhk".parse().unwrap();
        assert_eq!(i.to_lowercase(), "cfwhk");
        assert_eq!(i.innermost(), Dim::K);
    }

    #[test]
    fn parse_rejects_bad_strings() {
        assert!("WHCK".parse::<LoopOrder>().is_err());
        assert!("WHCKK".parse::<LoopOrder>().is_err());
        assert!("WHCKX".parse::<LoopOrder>().is_err());
    }

    #[test]
    fn parse_accepts_bracketed() {
        let o: LoopOrder = "[KWHCF]".parse().unwrap();
        assert_eq!(o.outermost(), Dim::K);
    }

    #[test]
    fn all_orders_are_unique_permutations() {
        let all = LoopOrder::all();
        assert_eq!(all.len(), 120);
        let mut set = std::collections::HashSet::new();
        for o in &all {
            assert!(set.insert(o.to_string()));
        }
    }

    #[test]
    fn relevance_sets_match_paper() {
        // §II-E: filters load in innermost C or K; inputs in W,H,C,F;
        // psums in W,H,K,F.
        assert!(Dim::K.weight_relevant() && Dim::C.weight_relevant());
        assert!(!Dim::W.weight_relevant());
        assert!(Dim::W.input_relevant() && !Dim::K.input_relevant());
        assert!(Dim::K.psum_relevant() && !Dim::C.psum_relevant());
    }

    #[test]
    fn position_is_consistent() {
        let o: LoopOrder = "KWHCF".parse().unwrap();
        assert_eq!(o.position(Dim::K), 0);
        assert_eq!(o.position(Dim::F), 4);
    }

    #[test]
    #[should_panic(expected = "repeats dimension")]
    fn new_rejects_duplicates() {
        LoopOrder::new([Dim::W, Dim::W, Dim::C, Dim::K, Dim::F]);
    }
}
