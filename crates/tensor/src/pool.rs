//! 3D max pooling.
//!
//! Pooling is <0.2 % of 3D CNN compute (§II-C) and is not accelerated by
//! Morph, but the network zoo needs it to chain layer shapes, and the
//! functional examples use it to run whole networks end to end.

use crate::tensor::Activations;

/// Parameters of a (possibly 3D) max-pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolShape {
    /// Window height.
    pub ph: usize,
    /// Window width.
    pub pw: usize,
    /// Window temporal depth.
    pub pf: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Temporal stride.
    pub stride_f: usize,
}

impl PoolShape {
    /// A cubic pooling window with stride equal to the window (the common
    /// case in C3D, e.g. `2×2×2` stride 2 or `1×2×2` stride `(1,2,2)`).
    pub fn new(pf: usize, ph: usize, pw: usize) -> Self {
        Self {
            ph,
            pw,
            pf,
            stride: pw.max(ph),
            stride_f: pf,
        }
    }

    /// Override the strides.
    pub fn with_stride(mut self, spatial: usize, temporal: usize) -> Self {
        self.stride = spatial;
        self.stride_f = temporal;
        self
    }

    /// Output dims for an input of `(f, h, w)`.
    pub fn out_dims(&self, f: usize, h: usize, w: usize) -> (usize, usize, usize) {
        (
            (f.saturating_sub(self.pf)) / self.stride_f + 1,
            (h.saturating_sub(self.ph)) / self.stride + 1,
            (w.saturating_sub(self.pw)) / self.stride + 1,
        )
    }
}

/// Max-pool an accumulator tensor (per channel).
pub fn maxpool3d(input: &Activations<i32>, pool: &PoolShape) -> Activations<i32> {
    let (c, f, h, w) = input.shape();
    let (fo, ho, wo) = pool.out_dims(f, h, w);
    Activations::from_fn(c, fo, ho, wo, |ci, fi, hi, wi| {
        let mut best = i32::MIN;
        for df in 0..pool.pf {
            for dh in 0..pool.ph {
                for dw in 0..pool.pw {
                    let v = input.get(
                        ci,
                        fi * pool.stride_f + df,
                        hi * pool.stride + dh,
                        wi * pool.stride + dw,
                    );
                    best = best.max(v);
                }
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_dims_c3d_style() {
        // C3D pool1: 1×2×2 on 16×112×112 → 16×56×56.
        let p = PoolShape::new(1, 2, 2).with_stride(2, 1);
        assert_eq!(p.out_dims(16, 112, 112), (16, 56, 56));
        // C3D pool2: 2×2×2 on 16×56×56 → 8×28×28.
        let p2 = PoolShape::new(2, 2, 2);
        assert_eq!(p2.out_dims(16, 56, 56), (8, 28, 28));
    }

    #[test]
    fn maxpool_takes_window_max() {
        let input = Activations::from_fn(1, 2, 2, 2, |_, f, h, w| (f * 4 + h * 2 + w) as i32);
        let out = maxpool3d(&input, &PoolShape::new(2, 2, 2));
        assert_eq!(out.shape(), (1, 1, 1, 1));
        assert_eq!(out.get(0, 0, 0, 0), 7);
    }

    #[test]
    fn maxpool_handles_negatives() {
        let input = Activations::from_fn(1, 1, 2, 2, |_, _, h, w| -((h * 2 + w) as i32) - 1);
        let out = maxpool3d(&input, &PoolShape::new(1, 2, 2));
        assert_eq!(out.get(0, 0, 0, 0), -1);
    }
}
