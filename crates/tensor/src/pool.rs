//! 3D max pooling.
//!
//! Pooling is <0.2 % of 3D CNN compute (§II-C) and is not accelerated by
//! Morph, but the network zoo needs it to chain layer shapes, and the
//! functional examples use it to run whole networks end to end.

use crate::tensor::Activations;

/// Parameters of a (possibly 3D) max-pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolShape {
    /// Window height.
    pub ph: usize,
    /// Window width.
    pub pw: usize,
    /// Window temporal depth.
    pub pf: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Temporal stride.
    pub stride_f: usize,
    /// Spatial padding (both sides; the window is clamped to valid
    /// elements, the max-pool equivalent of `-inf` padding).
    pub pad: usize,
    /// Temporal padding (both sides).
    pub pad_f: usize,
}

impl PoolShape {
    /// A cubic pooling window with stride equal to the window (the common
    /// case in C3D, e.g. `2×2×2` stride 2 or `1×2×2` stride `(1,2,2)`).
    pub fn new(pf: usize, ph: usize, pw: usize) -> Self {
        Self {
            ph,
            pw,
            pf,
            stride: pw.max(ph),
            stride_f: pf,
            pad: 0,
            pad_f: 0,
        }
    }

    /// Override the strides.
    pub fn with_stride(mut self, spatial: usize, temporal: usize) -> Self {
        self.stride = spatial;
        self.stride_f = temporal;
        self
    }

    /// Override the padding (e.g. ResNet's `3×3` stride-2 pad-1 stem pool).
    pub fn with_pad(mut self, spatial: usize, temporal: usize) -> Self {
        self.pad = spatial;
        self.pad_f = temporal;
        self
    }

    /// Output dims for an input of `(f, h, w)`.
    pub fn out_dims(&self, f: usize, h: usize, w: usize) -> (usize, usize, usize) {
        (
            ((f + 2 * self.pad_f).saturating_sub(self.pf)) / self.stride_f + 1,
            ((h + 2 * self.pad).saturating_sub(self.ph)) / self.stride + 1,
            ((w + 2 * self.pad).saturating_sub(self.pw)) / self.stride + 1,
        )
    }
}

/// Max-pool an accumulator tensor (per channel).
pub fn maxpool3d(input: &Activations<i32>, pool: &PoolShape) -> Activations<i32> {
    let (c, f, h, w) = input.shape();
    let (fo, ho, wo) = pool.out_dims(f, h, w);
    Activations::from_fn(c, fo, ho, wo, |ci, fi, hi, wi| {
        let mut best = i32::MIN;
        for df in 0..pool.pf {
            for dh in 0..pool.ph {
                for dw in 0..pool.pw {
                    // Window coordinates in the padded frame; skip padding
                    // (clamping is the max-pool equivalent of -inf pads).
                    let fp = fi * pool.stride_f + df;
                    let hp = hi * pool.stride + dh;
                    let wp = wi * pool.stride + dw;
                    if fp < pool.pad_f
                        || hp < pool.pad
                        || wp < pool.pad
                        || fp - pool.pad_f >= f
                        || hp - pool.pad >= h
                        || wp - pool.pad >= w
                    {
                        continue;
                    }
                    let v = input.get(ci, fp - pool.pad_f, hp - pool.pad, wp - pool.pad);
                    best = best.max(v);
                }
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_dims_c3d_style() {
        // C3D pool1: 1×2×2 on 16×112×112 → 16×56×56.
        let p = PoolShape::new(1, 2, 2).with_stride(2, 1);
        assert_eq!(p.out_dims(16, 112, 112), (16, 56, 56));
        // C3D pool2: 2×2×2 on 16×56×56 → 8×28×28.
        let p2 = PoolShape::new(2, 2, 2);
        assert_eq!(p2.out_dims(16, 56, 56), (8, 28, 28));
    }

    #[test]
    fn maxpool_takes_window_max() {
        let input = Activations::from_fn(1, 2, 2, 2, |_, f, h, w| (f * 4 + h * 2 + w) as i32);
        let out = maxpool3d(&input, &PoolShape::new(2, 2, 2));
        assert_eq!(out.shape(), (1, 1, 1, 1));
        assert_eq!(out.get(0, 0, 0, 0), 7);
    }

    #[test]
    fn padded_pool_dims_resnet_stem() {
        // ResNet pool1: 3×3 stride 2 pad 1 on 112×112 → 56×56.
        let p = PoolShape::new(1, 3, 3).with_stride(2, 1).with_pad(1, 0);
        assert_eq!(p.out_dims(1, 112, 112), (1, 56, 56));
    }

    #[test]
    fn padded_maxpool_clamps_to_valid_window() {
        // 2×2 input, 3×3 window stride 2 pad 1: each output sees a clamped
        // corner window; max over all-negative values stays finite.
        let input = Activations::from_fn(1, 1, 2, 2, |_, _, h, w| -((h * 2 + w) as i32) - 1);
        let p = PoolShape::new(1, 3, 3).with_stride(2, 1).with_pad(1, 0);
        let out = maxpool3d(&input, &p);
        assert_eq!(out.shape(), (1, 1, 1, 1));
        assert_eq!(out.get(0, 0, 0, 0), -1);
    }

    #[test]
    fn maxpool_handles_negatives() {
        let input = Activations::from_fn(1, 1, 2, 2, |_, _, h, w| -((h * 2 + w) as i32) - 1);
        let out = maxpool3d(&input, &PoolShape::new(1, 2, 2));
        assert_eq!(out.get(0, 0, 0, 0), -1);
    }
}
