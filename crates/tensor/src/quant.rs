//! Requantization of wide accumulators back to 8-bit activations.
//!
//! The paper assumes 8-bit inputs and weights (§III Remark). Between layers,
//! full-precision partial sums (§IV-B1) are scaled back to 8 bits so the
//! next layer again consumes 1-byte activations — which is why the model
//! writes final outputs to DRAM at activation width.

use crate::tensor::Activations;

/// Requantize accumulators to `i8` with a power-of-two right shift followed
/// by ReLU (clamp at 0) and saturation — the standard integer-inference
/// pipeline stage.
pub fn requantize_relu(acc: &Activations<i32>, shift: u32) -> Activations<i8> {
    let (c, f, h, w) = acc.shape();
    Activations::from_fn(c, f, h, w, |ci, fi, hi, wi| {
        let v = acc.get(ci, fi, hi, wi) >> shift;
        v.clamp(0, i8::MAX as i32) as i8
    })
}

/// Choose a shift so the largest accumulator magnitude fits in `i8` after
/// shifting (per-layer static scaling).
pub fn choose_shift(acc: &Activations<i32>) -> u32 {
    let max = acc
        .as_slice()
        .iter()
        .map(|v| v.unsigned_abs())
        .max()
        .unwrap_or(0);
    let mut shift = 0;
    while (max >> shift) > i8::MAX as u32 {
        shift += 1;
    }
    shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requantize_clamps_and_relus() {
        let acc = Activations::from_fn(1, 1, 1, 4, |_, _, _, w| match w {
            0 => -500,
            1 => 0,
            2 => 260,
            _ => 100,
        });
        let q = requantize_relu(&acc, 1);
        assert_eq!(q.get(0, 0, 0, 0), 0); // negative → ReLU
        assert_eq!(q.get(0, 0, 0, 1), 0);
        assert_eq!(q.get(0, 0, 0, 2), 127); // 130 saturates
        assert_eq!(q.get(0, 0, 0, 3), 50);
    }

    #[test]
    fn choose_shift_fits_max() {
        let acc = Activations::from_fn(1, 1, 1, 3, |_, _, _, w| (w as i32 + 1) * 1000);
        let s = choose_shift(&acc);
        assert!((3000 >> s) <= 127);
        assert!(s == 0 || (3000 >> (s - 1)) > 127);
    }

    #[test]
    fn zero_tensor_needs_no_shift() {
        let acc = Activations::<i32>::zeros(1, 1, 2, 2);
        assert_eq!(choose_shift(&acc), 0);
    }
}
