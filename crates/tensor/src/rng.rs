//! A tiny seeded xorshift64* generator for deterministic property sweeps.
//!
//! The repository runs fully offline, so randomized tests draw their cases
//! from this generator instead of an external property-testing framework.
//! Every draw is reproducible from the seed, which keeps failures
//! diagnosable across machines and CI.

/// Deterministic xorshift64* pseudo-random generator.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seed the generator; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `lo..hi` (half-open; `hi` must exceed `lo`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let mut r = XorShift::new(42);
        let b: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
