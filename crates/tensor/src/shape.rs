//! Convolution-layer shape arithmetic.
//!
//! The paper (§II-B) describes a 3D convolution of an input video of spatial
//! resolution `H × W`, `F` frames and `C` channels with `K` filters of
//! spatial size `R × S`, temporal size `T` and `C` channels, producing an
//! output of spatial size `(H − R + 1) × (W − S + 1)` with `K` channels and
//! `F − T + 1` frames. We generalize with stride and padding; 2D convolution
//! is the special case `F = T = 1` (§II-B Remark).

/// Bytes used to store one input activation or weight (8-bit, §III Remark).
pub const ACT_BYTES: u64 = 1;
/// Bytes used to store one weight (8-bit).
pub const WGT_BYTES: u64 = 1;

/// Shape of a single (possibly 3D) convolution layer.
///
/// Dimension names follow the paper: `H`/`W` spatial, `F` temporal frames,
/// `C` input channels, `K` output channels (filters), `R`/`S` filter
/// height/width, `T` filter temporal depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input frames (temporal extent). `1` for a 2D convolution.
    pub f: usize,
    /// Input channels.
    pub c: usize,
    /// Number of filters (output channels).
    pub k: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    /// Filter temporal depth. `1` for a 2D convolution.
    pub t: usize,
    /// Spatial stride (same in H and W, as in all evaluated networks).
    pub stride: usize,
    /// Temporal stride.
    pub stride_f: usize,
    /// Spatial zero-padding (same on all four spatial edges).
    pub pad: usize,
    /// Temporal zero-padding (both temporal edges).
    pub pad_f: usize,
}

impl ConvShape {
    /// A 3D convolution with stride 1 and no padding.
    #[allow(clippy::too_many_arguments)] // the eight §II-B dimensions
    pub fn new_3d(
        h: usize,
        w: usize,
        f: usize,
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        t: usize,
    ) -> Self {
        Self {
            h,
            w,
            f,
            c,
            k,
            r,
            s,
            t,
            stride: 1,
            stride_f: 1,
            pad: 0,
            pad_f: 0,
        }
    }

    /// A 2D convolution (`F = T = 1`) with stride 1 and no padding.
    pub fn new_2d(h: usize, w: usize, c: usize, k: usize, r: usize, s: usize) -> Self {
        Self::new_3d(h, w, 1, c, k, r, s, 1)
    }

    /// Builder-style stride setter (spatial and temporal).
    pub fn with_stride(mut self, spatial: usize, temporal: usize) -> Self {
        assert!(spatial >= 1 && temporal >= 1, "stride must be >= 1");
        self.stride = spatial;
        self.stride_f = temporal;
        self
    }

    /// Builder-style padding setter (spatial and temporal).
    pub fn with_pad(mut self, spatial: usize, temporal: usize) -> Self {
        self.pad = spatial;
        self.pad_f = temporal;
        self
    }

    /// True if this layer is a 2D convolution (`F = T = 1`).
    pub fn is_2d(&self) -> bool {
        self.f == 1 && self.t == 1
    }

    /// Padded input height.
    pub fn h_padded(&self) -> usize {
        self.h + 2 * self.pad
    }

    /// Padded input width.
    pub fn w_padded(&self) -> usize {
        self.w + 2 * self.pad
    }

    /// Padded input frame count.
    pub fn f_padded(&self) -> usize {
        self.f + 2 * self.pad_f
    }

    /// Output height `(H + 2·pad − R)/stride + 1`.
    pub fn h_out(&self) -> usize {
        conv_out(self.h_padded(), self.r, self.stride)
    }

    /// Output width.
    pub fn w_out(&self) -> usize {
        conv_out(self.w_padded(), self.s, self.stride)
    }

    /// Output frames.
    pub fn f_out(&self) -> usize {
        conv_out(self.f_padded(), self.t, self.stride_f)
    }

    /// Total multiply-accumulate operations to evaluate the layer.
    pub fn maccs(&self) -> u64 {
        self.output_elems() * (self.r * self.s * self.t * self.c) as u64
    }

    /// Number of output elements `K · F_out · H_out · W_out`.
    pub fn output_elems(&self) -> u64 {
        self.k as u64 * self.f_out() as u64 * self.h_out() as u64 * self.w_out() as u64
    }

    /// Number of input elements `C · F · H · W` (unpadded).
    pub fn input_elems(&self) -> u64 {
        self.c as u64 * self.f as u64 * self.h as u64 * self.w as u64
    }

    /// Number of weights `K · C · T · R · S`.
    pub fn weight_elems(&self) -> u64 {
        self.k as u64 * self.c as u64 * self.t as u64 * self.r as u64 * self.s as u64
    }

    /// Input footprint in bytes at activation precision.
    pub fn input_bytes(&self) -> u64 {
        self.input_elems() * ACT_BYTES
    }

    /// Weight footprint in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_elems() * WGT_BYTES
    }

    /// Output footprint in bytes at activation precision (after requantize).
    pub fn output_bytes(&self) -> u64 {
        self.output_elems() * ACT_BYTES
    }

    /// Bits required for an overflow-free partial sum:
    /// `2·P + ⌈log2(R·S·T·C)⌉` for `P`-bit operands (§IV-B1).
    pub fn psum_bits(&self, operand_bits: u32) -> u32 {
        let macc_terms = (self.r * self.s * self.t * self.c) as u64;
        2 * operand_bits + (64 - macc_terms.next_power_of_two().leading_zeros() - 1)
    }

    /// Partial-sum width in whole bytes for 8-bit operands.
    pub fn psum_bytes(&self) -> u64 {
        self.psum_bits(8).div_ceil(8) as u64
    }

    /// Average data reuse: MACCs per byte of (input + weight) footprint
    /// (Fig. 1b's metric).
    pub fn reuse_maccs_per_byte(&self) -> f64 {
        self.maccs() as f64 / (self.input_bytes() + self.weight_bytes()) as f64
    }

    /// Shape of the layer that consumes this layer's output (helper used by
    /// the network zoo to chain layers).
    pub fn output_as_input(&self) -> (usize, usize, usize, usize) {
        (self.h_out(), self.w_out(), self.f_out(), self.k)
    }
}

impl morph_json::ToJson for ConvShape {
    fn to_json(&self) -> morph_json::Value {
        use morph_json::Value;
        Value::obj([
            ("h", Value::Int(self.h as i64)),
            ("w", Value::Int(self.w as i64)),
            ("f", Value::Int(self.f as i64)),
            ("c", Value::Int(self.c as i64)),
            ("k", Value::Int(self.k as i64)),
            ("r", Value::Int(self.r as i64)),
            ("s", Value::Int(self.s as i64)),
            ("t", Value::Int(self.t as i64)),
            ("stride", Value::Int(self.stride as i64)),
            ("stride_f", Value::Int(self.stride_f as i64)),
            ("pad", Value::Int(self.pad as i64)),
            ("pad_f", Value::Int(self.pad_f as i64)),
        ])
    }
}

impl morph_json::FromJson for ConvShape {
    fn from_json(v: &morph_json::Value) -> Result<Self, String> {
        use morph_json::field_usize;
        Ok(ConvShape {
            h: field_usize(v, "h")?,
            w: field_usize(v, "w")?,
            f: field_usize(v, "f")?,
            c: field_usize(v, "c")?,
            k: field_usize(v, "k")?,
            r: field_usize(v, "r")?,
            s: field_usize(v, "s")?,
            t: field_usize(v, "t")?,
            stride: field_usize(v, "stride")?,
            stride_f: field_usize(v, "stride_f")?,
            pad: field_usize(v, "pad")?,
            pad_f: field_usize(v, "pad_f")?,
        })
    }
}

/// One-dimensional convolution output size.
pub fn conv_out(padded_in: usize, filter: usize, stride: usize) -> usize {
    assert!(filter >= 1 && stride >= 1);
    assert!(
        padded_in >= filter,
        "padded input extent {padded_in} smaller than filter extent {filter}"
    );
    (padded_in - filter) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula_stride1_nopad() {
        // §II-B: output (H−R+1) × (W−S+1), F−T+1 frames, K channels.
        let sh = ConvShape::new_3d(112, 112, 16, 3, 64, 3, 3, 3);
        assert_eq!(sh.h_out(), 110);
        assert_eq!(sh.w_out(), 110);
        assert_eq!(sh.f_out(), 14);
    }

    #[test]
    fn same_padding_preserves_dims() {
        let sh = ConvShape::new_3d(112, 112, 16, 3, 64, 3, 3, 3).with_pad(1, 1);
        assert_eq!(sh.h_out(), 112);
        assert_eq!(sh.w_out(), 112);
        assert_eq!(sh.f_out(), 16);
    }

    #[test]
    fn two_d_special_case() {
        let sh = ConvShape::new_2d(227, 227, 3, 96, 11, 11).with_stride(4, 1);
        assert!(sh.is_2d());
        assert_eq!(sh.h_out(), 55);
        assert_eq!(sh.w_out(), 55);
        assert_eq!(sh.f_out(), 1);
    }

    #[test]
    fn macc_count_matches_naive() {
        let sh = ConvShape::new_3d(8, 8, 4, 2, 5, 3, 3, 3).with_pad(1, 1);
        let expected =
            (sh.k * sh.h_out() * sh.w_out() * sh.f_out() * sh.r * sh.s * sh.t * sh.c) as u64;
        assert_eq!(sh.maccs(), expected);
    }

    #[test]
    fn psum_width_matches_paper_formula() {
        // P=8, RSTC = 3·3·3·512 = 13824 → log2 ≈ 13.75 → 14 bits → 30 bits.
        let sh = ConvShape::new_3d(14, 14, 4, 512, 512, 3, 3, 3);
        assert_eq!(sh.psum_bits(8), 30);
        assert_eq!(sh.psum_bytes(), 4);
        // Small accumulation: 3·3·1·3 = 27 → 5 bits → 21 bits → 3 bytes.
        let sh2 = ConvShape::new_2d(8, 8, 3, 4, 3, 3);
        assert_eq!(sh2.psum_bits(8), 21);
        assert_eq!(sh2.psum_bytes(), 3);
    }

    #[test]
    fn reuse_is_higher_for_3d() {
        let c3d = ConvShape::new_3d(112, 112, 16, 64, 64, 3, 3, 3).with_pad(1, 1);
        let c2d = ConvShape::new_2d(112, 112, 64, 64, 3, 3).with_pad(1, 0);
        assert!(c3d.reuse_maccs_per_byte() > c2d.reuse_maccs_per_byte());
    }

    #[test]
    #[should_panic(expected = "smaller than filter")]
    fn filter_larger_than_input_panics() {
        conv_out(2, 3, 1);
    }
}
