//! Dense tensor containers for activations and filters.
//!
//! Layouts mirror the paper's indexing (Algorithm 1): activations are
//! indexed `[c][f][h][w]` and filters `[k][c][t][r][s]`. Storage is a flat
//! row-major `Vec` with the last axis contiguous.

use std::fmt;

/// A dense 4-D activation tensor indexed `[channel][frame][row][col]`.
#[derive(Clone, PartialEq)]
pub struct Activations<T> {
    c: usize,
    f: usize,
    h: usize,
    w: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Activations<T> {
    /// Zero-initialized tensor of the given shape.
    pub fn zeros(c: usize, f: usize, h: usize, w: usize) -> Self {
        Self {
            c,
            f,
            h,
            w,
            data: vec![T::default(); c * f * h * w],
        }
    }

    /// Build from a generator function of `(c, f, h, w)`.
    pub fn from_fn(
        c: usize,
        f: usize,
        h: usize,
        w: usize,
        mut g: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(c * f * h * w);
        for ci in 0..c {
            for fi in 0..f {
                for hi in 0..h {
                    for wi in 0..w {
                        data.push(g(ci, fi, hi, wi));
                    }
                }
            }
        }
        Self { c, f, h, w, data }
    }

    /// (channels, frames, height, width).
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.c, self.f, self.h, self.w)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn idx(&self, c: usize, f: usize, h: usize, w: usize) -> usize {
        debug_assert!(c < self.c && f < self.f && h < self.h && w < self.w);
        ((c * self.f + f) * self.h + h) * self.w + w
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, c: usize, f: usize, h: usize, w: usize) -> T {
        self.data[self.idx(c, f, h, w)]
    }

    /// Element accessor returning `default` outside the valid region
    /// (used for zero padding).
    #[inline]
    pub fn get_padded(&self, c: usize, f: isize, h: isize, w: isize) -> T {
        if f < 0
            || h < 0
            || w < 0
            || f as usize >= self.f
            || h as usize >= self.h
            || w as usize >= self.w
        {
            T::default()
        } else {
            self.get(c, f as usize, h as usize, w as usize)
        }
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, c: usize, f: usize, h: usize, w: usize, v: T) {
        let i = self.idx(c, f, h, w);
        self.data[i] = v;
    }

    /// Add `v` into an element (psum accumulation).
    #[inline]
    pub fn add(&mut self, c: usize, f: usize, h: usize, w: usize, v: T)
    where
        T: core::ops::AddAssign,
    {
        let i = self.idx(c, f, h, w);
        self.data[i] += v;
    }

    /// Flat view of the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> fmt::Debug for Activations<T> {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            fm,
            "Activations({}x{}x{}x{})",
            self.c, self.f, self.h, self.w
        )
    }
}

/// A dense 5-D filter tensor indexed `[k][c][t][r][s]`.
#[derive(Clone, PartialEq)]
pub struct Filters<T> {
    k: usize,
    c: usize,
    t: usize,
    r: usize,
    s: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Filters<T> {
    /// Zero-initialized filters of the given shape.
    pub fn zeros(k: usize, c: usize, t: usize, r: usize, s: usize) -> Self {
        Self {
            k,
            c,
            t,
            r,
            s,
            data: vec![T::default(); k * c * t * r * s],
        }
    }

    /// Build from a generator function of `(k, c, t, r, s)`.
    pub fn from_fn(
        k: usize,
        c: usize,
        t: usize,
        r: usize,
        s: usize,
        mut g: impl FnMut(usize, usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(k * c * t * r * s);
        for ki in 0..k {
            for ci in 0..c {
                for ti in 0..t {
                    for ri in 0..r {
                        for si in 0..s {
                            data.push(g(ki, ci, ti, ri, si));
                        }
                    }
                }
            }
        }
        Self {
            k,
            c,
            t,
            r,
            s,
            data,
        }
    }

    /// (filters, channels, temporal depth, height, width).
    pub fn shape(&self) -> (usize, usize, usize, usize, usize) {
        (self.k, self.c, self.t, self.r, self.s)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the filter bank has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn idx(&self, k: usize, c: usize, t: usize, r: usize, s: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && t < self.t && r < self.r && s < self.s);
        (((k * self.c + c) * self.t + t) * self.r + r) * self.s + s
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, k: usize, c: usize, t: usize, r: usize, s: usize) -> T {
        self.data[self.idx(k, c, t, r, s)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, k: usize, c: usize, t: usize, r: usize, s: usize, v: T) {
        let i = self.idx(k, c, t, r, s);
        self.data[i] = v;
    }

    /// Flat view of the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> fmt::Debug for Filters<T> {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            fm,
            "Filters({}x{}x{}x{}x{})",
            self.k, self.c, self.t, self.r, self.s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations_roundtrip() {
        let mut a = Activations::<i32>::zeros(2, 3, 4, 5);
        a.set(1, 2, 3, 4, 42);
        assert_eq!(a.get(1, 2, 3, 4), 42);
        assert_eq!(a.get(0, 0, 0, 0), 0);
        assert_eq!(a.len(), 2 * 3 * 4 * 5);
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let a = Activations::from_fn(1, 2, 2, 2, |_, _, _, _| 7i32);
        assert_eq!(a.get_padded(0, -1, 0, 0), 0);
        assert_eq!(a.get_padded(0, 0, 2, 0), 0);
        assert_eq!(a.get_padded(0, 1, 1, 1), 7);
    }

    #[test]
    fn filters_roundtrip() {
        let f = Filters::from_fn(2, 3, 1, 3, 3, |k, c, _, r, s| {
            (k * 1000 + c * 100 + r * 10 + s) as i32
        });
        assert_eq!(f.get(1, 2, 0, 2, 1), 1221);
        assert_eq!(f.len(), 2 * 3 * 9);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let a = Activations::from_fn(1, 1, 2, 3, |_, _, h, w| (h * 3 + w) as i32);
        assert_eq!(a.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn accumulate_adds_in_place() {
        let mut a = Activations::<i64>::zeros(1, 1, 1, 1);
        a.add(0, 0, 0, 0, 5);
        a.add(0, 0, 0, 0, 7);
        assert_eq!(a.get(0, 0, 0, 0), 12);
    }
}
