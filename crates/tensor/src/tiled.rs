//! Tiled 3D convolution.
//!
//! Splits the five tiled dimensions (§II-D) into tiles of configurable size
//! and walks the tiles in a configurable [`LoopOrder`] (§II-E). The result
//! must be bit-identical to [`crate::conv::conv3d_reference`] for every
//! tiling and order — this is the commutativity property the paper's
//! flexible dataflows rely on, and the property test that guards the halo
//! arithmetic used throughout the analytical model.

use crate::conv::{check_shapes, Acc};
use crate::order::{Dim, LoopOrder};
use crate::shape::ConvShape;
use crate::tensor::{Activations, Filters};

/// Tile sizes for the five tiled dimensions, in **output coordinates** for
/// `F`, `H`, `W` (the input-coordinate footprint adds the filter halo) and
/// in element counts for `C` and `K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Output-height elements per tile.
    pub h: usize,
    /// Output-width elements per tile.
    pub w: usize,
    /// Output-frame elements per tile.
    pub f: usize,
    /// Input channels per tile.
    pub c: usize,
    /// Filters per tile.
    pub k: usize,
}

impl Tile {
    /// A tile covering the whole layer (no tiling).
    pub fn whole(shape: &ConvShape) -> Self {
        Self {
            h: shape.h_out(),
            w: shape.w_out(),
            f: shape.f_out(),
            c: shape.c,
            k: shape.k,
        }
    }

    /// The minimum tile: one element along every dimension. Always fits
    /// every buffer level, so it is the universal fallback when no larger
    /// candidate does.
    pub fn unit() -> Self {
        Self {
            h: 1,
            w: 1,
            f: 1,
            c: 1,
            k: 1,
        }
    }

    /// Tile extent along a dimension.
    pub fn extent(&self, d: Dim) -> usize {
        match d {
            Dim::W => self.w,
            Dim::H => self.h,
            Dim::C => self.c,
            Dim::K => self.k,
            Dim::F => self.f,
        }
    }

    /// Replace the extent along one dimension.
    pub fn with_extent(mut self, d: Dim, v: usize) -> Self {
        match d {
            Dim::W => self.w = v,
            Dim::H => self.h = v,
            Dim::C => self.c = v,
            Dim::K => self.k = v,
            Dim::F => self.f = v,
        }
        self
    }

    /// Number of tiles needed to cover `shape` along each dimension.
    pub fn trip_counts(&self, shape: &ConvShape) -> [usize; 5] {
        // Order: W, H, C, K, F (Dim::ALL order).
        [
            shape.w_out().div_ceil(self.w),
            shape.h_out().div_ceil(self.h),
            shape.c.div_ceil(self.c),
            shape.k.div_ceil(self.k),
            shape.f_out().div_ceil(self.f),
        ]
    }
}

impl morph_json::ToJson for Tile {
    fn to_json(&self) -> morph_json::Value {
        use morph_json::Value;
        Value::obj([
            ("h", Value::Int(self.h as i64)),
            ("w", Value::Int(self.w as i64)),
            ("f", Value::Int(self.f as i64)),
            ("c", Value::Int(self.c as i64)),
            ("k", Value::Int(self.k as i64)),
        ])
    }
}

impl morph_json::FromJson for Tile {
    fn from_json(v: &morph_json::Value) -> Result<Self, String> {
        use morph_json::field_usize;
        Ok(Tile {
            h: field_usize(v, "h")?,
            w: field_usize(v, "w")?,
            f: field_usize(v, "f")?,
            c: field_usize(v, "c")?,
            k: field_usize(v, "k")?,
        })
    }
}

/// Full extents of the tiled iteration space of a layer, in [`Dim::ALL`]
/// order (`W`, `H`, `C`, `K`, `F`).
pub fn layer_extents(shape: &ConvShape) -> [usize; 5] {
    [
        shape.w_out(),
        shape.h_out(),
        shape.c,
        shape.k,
        shape.f_out(),
    ]
}

/// Tiled 3D convolution: identical math to the reference, but evaluated
/// tile by tile in the given loop order, accumulating partial sums across
/// channel tiles.
///
/// # Panics
///
/// Panics if shapes mismatch or any tile extent is zero.
pub fn conv3d_tiled(
    shape: &ConvShape,
    input: &Activations<i8>,
    filters: &Filters<i8>,
    tile: Tile,
    order: LoopOrder,
) -> Activations<Acc> {
    check_shapes(shape, input, filters);
    assert!(
        tile.h > 0 && tile.w > 0 && tile.f > 0 && tile.c > 0 && tile.k > 0,
        "tile extents must be positive"
    );
    let extents = layer_extents(shape);
    let mut out = Activations::<Acc>::zeros(shape.k, shape.f_out(), shape.h_out(), shape.w_out());

    // Walk tile origins in the configured loop order (outermost first).
    let dims = order.dims();
    let trips: Vec<usize> = dims
        .iter()
        .map(|&d| extents[dim_index(d)].div_ceil(tile.extent(d)))
        .collect();
    let mut idx = [0usize; 5];
    loop {
        // Tile origin and clipped extent per dimension.
        let mut origin = [0usize; 5];
        let mut size = [0usize; 5];
        for (pos, &d) in dims.iter().enumerate() {
            let di = dim_index(d);
            origin[di] = idx[pos] * tile.extent(d);
            size[di] = tile.extent(d).min(extents[di] - origin[di]);
        }
        conv_tile(shape, input, filters, &origin, &size, &mut out);

        // Odometer increment, innermost fastest.
        let mut pos = 4;
        loop {
            idx[pos] += 1;
            if idx[pos] < trips[pos] {
                break;
            }
            idx[pos] = 0;
            if pos == 0 {
                return out;
            }
            pos -= 1;
        }
    }
}

fn dim_index(d: Dim) -> usize {
    Dim::ALL.iter().position(|&x| x == d).unwrap()
}

/// Evaluate one tile: origins/sizes are in `Dim::ALL` order (W,H,C,K,F).
fn conv_tile(
    shape: &ConvShape,
    input: &Activations<i8>,
    filters: &Filters<i8>,
    origin: &[usize; 5],
    size: &[usize; 5],
    out: &mut Activations<Acc>,
) {
    let (w0, h0, c0, k0, f0) = (origin[0], origin[1], origin[2], origin[3], origin[4]);
    let (wn, hn, cn, kn, fn_) = (size[0], size[1], size[2], size[3], size[4]);
    for k in k0..k0 + kn {
        for f in f0..f0 + fn_ {
            for h in h0..h0 + hn {
                for w in w0..w0 + wn {
                    let mut acc: Acc = 0;
                    for c in c0..c0 + cn {
                        for t in 0..shape.t {
                            let fi = (f * shape.stride_f + t) as isize - shape.pad_f as isize;
                            for r in 0..shape.r {
                                let hi = (h * shape.stride + r) as isize - shape.pad as isize;
                                for s in 0..shape.s {
                                    let wi = (w * shape.stride + s) as isize - shape.pad as isize;
                                    acc += input.get_padded(c, fi, hi, wi) as Acc
                                        * filters.get(k, c, t, r, s) as Acc;
                                }
                            }
                        }
                    }
                    out.add(k, f, h, w, acc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv3d_reference, synth_filters, synth_input};

    fn check(shape: &ConvShape, tile: Tile, order: &str) {
        let input = synth_input(shape, 11);
        let filters = synth_filters(shape, 22);
        let reference = conv3d_reference(shape, &input, &filters);
        let tiled = conv3d_tiled(shape, &input, &filters, tile, order.parse().unwrap());
        assert_eq!(
            reference.as_slice(),
            tiled.as_slice(),
            "tile {tile:?} order {order}"
        );
    }

    #[test]
    fn whole_tile_equals_reference() {
        let sh = ConvShape::new_3d(6, 6, 4, 3, 4, 3, 3, 3).with_pad(1, 1);
        check(&sh, Tile::whole(&sh), "WHCKF");
    }

    #[test]
    fn small_tiles_all_base_orders() {
        let sh = ConvShape::new_3d(6, 5, 4, 3, 4, 3, 3, 2).with_pad(1, 0);
        let tile = Tile {
            h: 2,
            w: 3,
            f: 2,
            c: 2,
            k: 3,
        };
        for order in ["WHCKF", "KWHCF", "WFHCK", "CFWHK", "FKCHW"] {
            check(&sh, tile, order);
        }
    }

    #[test]
    fn ragged_tiles_cover_edges() {
        // Tile sizes that do not divide the extents exercise edge clipping.
        let sh = ConvShape::new_3d(7, 7, 5, 3, 5, 3, 3, 3).with_pad(1, 1);
        let tile = Tile {
            h: 3,
            w: 4,
            f: 2,
            c: 2,
            k: 2,
        };
        check(&sh, tile, "FCKHW");
    }

    #[test]
    fn strided_tiled_conv() {
        let sh = ConvShape::new_3d(9, 9, 4, 2, 3, 3, 3, 2).with_stride(2, 1);
        let tile = Tile {
            h: 2,
            w: 2,
            f: 2,
            c: 1,
            k: 2,
        };
        check(&sh, tile, "KFCWH");
    }

    #[test]
    fn channel_tiling_accumulates() {
        // c-tiles of 1 force cross-tile psum accumulation.
        let sh = ConvShape::new_2d(5, 5, 4, 2, 3, 3);
        let tile = Tile {
            h: 5,
            w: 5,
            f: 1,
            c: 1,
            k: 1,
        };
        check(&sh, tile, "WHCKF");
    }

    #[test]
    fn unit_tile_is_all_ones() {
        let u = Tile::unit();
        assert_eq!((u.h, u.w, u.f, u.c, u.k), (1, 1, 1, 1, 1));
        for d in Dim::ALL {
            assert_eq!(u.extent(d), 1);
        }
        // The unit tile covers any layer in exactly one element per step.
        let sh = ConvShape::new_3d(5, 4, 3, 2, 6, 3, 3, 2).with_pad(1, 0);
        check(&sh, Tile::unit(), "WHCKF");
    }

    #[test]
    fn trip_counts_round_up() {
        let sh = ConvShape::new_3d(10, 10, 5, 7, 9, 3, 3, 3).with_pad(1, 1);
        let tile = Tile {
            h: 4,
            w: 4,
            f: 2,
            c: 3,
            k: 4,
        };
        assert_eq!(tile.trip_counts(&sh), [3, 3, 3, 3, 3]);
    }
}
