//! Property tests: any tiling of any loop order reproduces the reference
//! convolution bit-exactly (§II-E commutativity + §II-D halo correctness).

use morph_tensor::prelude::*;
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = ConvShape> {
    (
        2usize..8,  // h
        2usize..8,  // w
        1usize..5,  // f
        1usize..4,  // c
        1usize..4,  // k
        1usize..3,  // t
        1usize..3,  // stride
        0usize..2,  // pad
    )
        .prop_filter_map("filter must fit padded input", |(h, w, f, c, k, t, stride, pad)| {
            let r = 3.min(h + 2 * pad);
            let s = 3.min(w + 2 * pad);
            let t = t.min(f);
            let shape = ConvShape::new_3d(h, w, f, c, k, r, s, t)
                .with_stride(stride, 1)
                .with_pad(pad, 0);
            (shape.h_padded() >= r && shape.w_padded() >= s && shape.f_padded() >= t).then_some(shape)
        })
}

fn arb_tile(shape: ConvShape) -> impl Strategy<Value = Tile> {
    let whole = Tile::whole(&shape);
    (
        1..=whole.h,
        1..=whole.w,
        1..=whole.f,
        1..=whole.c,
        1..=whole.k,
    )
        .prop_map(|(h, w, f, c, k)| Tile { h, w, f, c, k })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiled_matches_reference(
        (shape, tile, order_idx, seed) in arb_shape().prop_flat_map(|s| {
            (Just(s), arb_tile(s), 0usize..120, any::<u64>())
        })
    ) {
        let order = LoopOrder::all()[order_idx];
        let input = synth_input(&shape, seed);
        let filters = synth_filters(&shape, seed ^ 0xABCD);
        let reference = conv3d_reference(&shape, &input, &filters);
        let tiled = conv3d_tiled(&shape, &input, &filters, tile, order);
        prop_assert_eq!(reference.as_slice(), tiled.as_slice());
    }

    #[test]
    fn output_dims_match_paper_formula(shape in arb_shape()) {
        // §II-B with stride/pad generalization.
        prop_assert_eq!(shape.h_out(), (shape.h + 2 * shape.pad - shape.r) / shape.stride + 1);
        prop_assert_eq!(shape.w_out(), (shape.w + 2 * shape.pad - shape.s) / shape.stride + 1);
        prop_assert_eq!(shape.f_out(), (shape.f + 2 * shape.pad_f - shape.t) / shape.stride_f + 1);
    }

    #[test]
    fn maccs_scale_with_output(shape in arb_shape()) {
        let per_output = (shape.r * shape.s * shape.t * shape.c) as u64;
        prop_assert_eq!(shape.maccs(), shape.output_elems() * per_output);
    }
}
