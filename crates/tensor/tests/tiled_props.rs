//! Property tests: any tiling of any loop order reproduces the reference
//! convolution bit-exactly (§II-E commutativity + §II-D halo correctness).
//!
//! Cases are drawn from a seeded xorshift generator so the sweep is
//! deterministic and dependency-free.

use morph_tensor::prelude::*;
use morph_tensor::rng::XorShift as Rng;

fn arb_shape(rng: &mut Rng) -> ConvShape {
    loop {
        let (h, w) = (rng.range(2, 8), rng.range(2, 8));
        let f = rng.range(1, 5);
        let (c, k) = (rng.range(1, 4), rng.range(1, 4));
        let t = rng.range(1, 3).min(f);
        let stride = rng.range(1, 3);
        let pad = rng.range(0, 2);
        let r = 3.min(h + 2 * pad);
        let s = 3.min(w + 2 * pad);
        let shape = ConvShape::new_3d(h, w, f, c, k, r, s, t)
            .with_stride(stride, 1)
            .with_pad(pad, 0);
        if shape.h_padded() >= r && shape.w_padded() >= s && shape.f_padded() >= t {
            return shape;
        }
    }
}

fn arb_tile(rng: &mut Rng, shape: &ConvShape) -> Tile {
    let whole = Tile::whole(shape);
    Tile {
        h: rng.range(1, whole.h + 1),
        w: rng.range(1, whole.w + 1),
        f: rng.range(1, whole.f + 1),
        c: rng.range(1, whole.c + 1),
        k: rng.range(1, whole.k + 1),
    }
}

#[test]
fn tiled_matches_reference() {
    let mut rng = Rng::new(0xC3D);
    let orders = LoopOrder::all();
    for _ in 0..64 {
        let shape = arb_shape(&mut rng);
        let tile = arb_tile(&mut rng, &shape);
        let order = orders[rng.range(0, orders.len())];
        let seed = rng.next_u64();
        let input = synth_input(&shape, seed);
        let filters = synth_filters(&shape, seed ^ 0xABCD);
        let reference = conv3d_reference(&shape, &input, &filters);
        let tiled = conv3d_tiled(&shape, &input, &filters, tile, order);
        assert_eq!(
            reference.as_slice(),
            tiled.as_slice(),
            "shape {shape:?} tile {tile:?} order {order}"
        );
    }
}

#[test]
fn output_dims_match_paper_formula() {
    // §II-B with stride/pad generalization.
    let mut rng = Rng::new(0xF16);
    for _ in 0..200 {
        let shape = arb_shape(&mut rng);
        assert_eq!(
            shape.h_out(),
            (shape.h + 2 * shape.pad - shape.r) / shape.stride + 1
        );
        assert_eq!(
            shape.w_out(),
            (shape.w + 2 * shape.pad - shape.s) / shape.stride + 1
        );
        assert_eq!(
            shape.f_out(),
            (shape.f + 2 * shape.pad_f - shape.t) / shape.stride_f + 1
        );
    }
}

#[test]
fn maccs_scale_with_output() {
    let mut rng = Rng::new(0xACC);
    for _ in 0..200 {
        let shape = arb_shape(&mut rng);
        let per_output = (shape.r * shape.s * shape.t * shape.c) as u64;
        assert_eq!(shape.maccs(), shape.output_elems() * per_output);
    }
}
