//! # morph-trace
//!
//! Dependency-free tracing/metrics substrate for the Morph workspace, in
//! the same spirit as `morph-json`: no external crates, deterministic
//! output, one small surface every other layer can instrument through.
//!
//! The model is the Chrome `trace_event` one — named **tracks** (rendered
//! as Perfetto threads) carrying four kinds of [`TraceEvent`]:
//!
//! * **spans** — `Begin`/`End` pairs with stack discipline per track
//!   (a stage in service, a layer's mapping search, a wall-clock
//!   evaluation);
//! * **counters** — cumulative, monotonically non-decreasing samples
//!   (candidates enumerated, cache hits);
//! * **gauges** — level samples that may go up and down (channel
//!   occupancy);
//! * **instants** — zero-duration marks (a branch-and-bound incumbent
//!   improving).
//!
//! Timestamps are plain `u64` in whatever clock the producing layer uses:
//! the pipeline engine records **simulated cycles** (bit-identical across
//! runs), the mapping search records its **candidate index** (also
//! deterministic), and the session records **wall-clock nanoseconds**
//! (inherently nondeterministic — which is why trace files are sidecars
//! and never ride inside a `RunReport`; see `crates/json`'s schema docs).
//!
//! Producers write through the [`Recorder`] trait. The default
//! [`NoopRecorder`] reports `enabled() == false`, and every convenience
//! method is gated on that flag before it builds an event, so an
//! uninstrumented run pays one inlined boolean test per site — nothing
//! more. [`TraceBuffer`] is the in-memory implementation; its
//! [`TraceBuffer::to_perfetto`] exporter writes a Chrome
//! `trace_event`-format JSON document via `morph-json` that
//! [Perfetto](https://ui.perfetto.dev) (or `chrome://tracing`) opens
//! directly, and [`TraceBuffer::from_perfetto`] reads the same document
//! back losslessly.
//!
//! ```
//! use morph_trace::{Recorder, TraceBuffer};
//!
//! let buf = TraceBuffer::new();
//! buf.span_begin("stage:conv1", "service", 0);
//! buf.gauge("edge:0->1", "occupancy", 20, 1);
//! buf.span_end("stage:conv1", "service", 30);
//! let doc = buf.to_perfetto(Some((0, 30)));
//! let (back, bounds) = TraceBuffer::from_perfetto(&doc).unwrap();
//! assert_eq!(back.events(), buf.events());
//! assert_eq!(bounds, Some((0, 30)));
//! ```

use morph_check::sync::Mutex;
use morph_json::Value;
use std::collections::BTreeMap;

/// What kind of mark a [`TraceEvent`] is.
///
/// `Counter` carries cumulative values (audited monotonic per
/// `(track, name)`); `Gauge` carries level samples free to move both
/// ways. Both render as Perfetto counter tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Open a span on the track (stack discipline per track).
    Begin,
    /// Close the innermost open span of the same name on the track.
    End,
    /// Cumulative counter sample (monotonically non-decreasing).
    Counter(u64),
    /// Level sample (may rise and fall).
    Gauge(u64),
    /// Zero-duration mark.
    Instant,
}

/// One recorded event: a named mark on a named track at a `u64`
/// timestamp in the producer's clock (simulated cycles, candidate index,
/// or wall nanoseconds — see the crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Track the event belongs to (rendered as a Perfetto thread).
    pub track: String,
    /// Event name (span label, counter name, instant label).
    pub name: String,
    /// Timestamp in the producer's clock.
    pub ts: u64,
    /// Event kind (and payload, for counters/gauges).
    pub phase: Phase,
}

/// Sink for trace events. Instrumented code holds a `&dyn Recorder` (or
/// an `Arc<dyn Recorder>`) and calls the convenience methods; each one
/// checks [`Recorder::enabled`] before building an event, so the default
/// [`NoopRecorder`] costs a single branch per instrumentation point.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps events at all. Hot loops may hoist
    /// this into a local and skip their instrumentation entirely.
    fn enabled(&self) -> bool;

    /// Store one event. Only called when [`Recorder::enabled`] is true.
    fn record(&self, event: TraceEvent);

    /// Open a span on `track`.
    fn span_begin(&self, track: &str, name: &str, ts: u64) {
        if self.enabled() {
            self.record(TraceEvent {
                track: track.to_string(),
                name: name.to_string(),
                ts,
                phase: Phase::Begin,
            });
        }
    }

    /// Close the innermost open span named `name` on `track`.
    fn span_end(&self, track: &str, name: &str, ts: u64) {
        if self.enabled() {
            self.record(TraceEvent {
                track: track.to_string(),
                name: name.to_string(),
                ts,
                phase: Phase::End,
            });
        }
    }

    /// Record a complete span in one call (begin at `ts`, end at
    /// `ts_end`). Purely a convenience for producers that only learn
    /// about an interval after it closed.
    fn span(&self, track: &str, name: &str, ts: u64, ts_end: u64) {
        if self.enabled() {
            self.span_begin(track, name, ts);
            self.span_end(track, name, ts_end);
        }
    }

    /// Sample a cumulative counter (values must never decrease).
    fn counter(&self, track: &str, name: &str, ts: u64, value: u64) {
        if self.enabled() {
            self.record(TraceEvent {
                track: track.to_string(),
                name: name.to_string(),
                ts,
                phase: Phase::Counter(value),
            });
        }
    }

    /// Sample a level gauge (values are free to rise and fall).
    fn gauge(&self, track: &str, name: &str, ts: u64, value: u64) {
        if self.enabled() {
            self.record(TraceEvent {
                track: track.to_string(),
                name: name.to_string(),
                ts,
                phase: Phase::Gauge(value),
            });
        }
    }

    /// Record a zero-duration mark.
    fn instant(&self, track: &str, name: &str, ts: u64) {
        if self.enabled() {
            self.record(TraceEvent {
                track: track.to_string(),
                name: name.to_string(),
                ts,
                phase: Phase::Instant,
            });
        }
    }
}

/// The zero-overhead default: `enabled()` is `false`, so no convenience
/// method ever builds an event and `record` is unreachable in practice.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// In-memory [`Recorder`]: an append-only, mutex-guarded event list.
///
/// Event order is exactly call order. Single-threaded producers (the
/// pipeline engine, one layer's search) therefore yield deterministic
/// buffers; multi-threaded producers (the session's worker pool)
/// interleave nondeterministically between tracks while each track's own
/// sequence stays ordered.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded events in call order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// A new buffer holding only the events `keep` accepts, in order.
    /// Used to split one mixed-clock recording into per-domain sidecar
    /// files (e.g. simulated-cycle tracks vs wall-clock tracks).
    pub fn filter(&self, keep: impl Fn(&TraceEvent) -> bool) -> TraceBuffer {
        let kept: Vec<TraceEvent> = self
            .events
            .lock()
            .iter()
            .filter(|e| keep(e))
            .cloned()
            .collect();
        TraceBuffer {
            events: Mutex::new(kept),
        }
    }

    /// Export as a Chrome `trace_event`/Perfetto JSON document.
    ///
    /// Tracks become threads of one process: tids are assigned by sorted
    /// track name (deterministic regardless of recording interleaving)
    /// and announced with standard `thread_name` metadata events, so both
    /// Perfetto and [`TraceBuffer::from_perfetto`] recover the names.
    /// `bounds` (e.g. `[fill start, drain end]` in simulated cycles) are
    /// carried in a top-level `morph_bounds` field the trace audit pass
    /// reads back; viewers ignore it.
    pub fn to_perfetto(&self, bounds: Option<(u64, u64)>) -> Value {
        let events = self.events.lock();
        let mut tids: BTreeMap<&str, i64> = BTreeMap::new();
        for e in events.iter() {
            let next = tids.len() as i64 + 1;
            tids.entry(e.track.as_str()).or_insert(next);
        }
        // BTreeMap iteration is sorted by track name; re-number so tid
        // order equals name order (stable against recording interleaves).
        for (i, (_, tid)) in tids.iter_mut().enumerate() {
            *tid = i as i64 + 1;
        }

        let mut out: Vec<Value> = Vec::with_capacity(events.len() + tids.len());
        for (track, tid) in &tids {
            out.push(Value::obj([
                ("ph", Value::Str("M".into())),
                ("name", Value::Str("thread_name".into())),
                ("pid", Value::Int(1)),
                ("tid", Value::Int(*tid)),
                ("args", Value::obj([("name", Value::Str((*track).into()))])),
            ]));
        }
        for e in events.iter() {
            let tid = tids[e.track.as_str()];
            let mut fields = vec![
                ("ph", Value::Str(ph_label(e.phase).into())),
                ("name", Value::Str(e.name.clone())),
                ("cat", Value::Str(cat_label(e.phase).into())),
                ("ts", Value::Int(e.ts as i64)),
                ("pid", Value::Int(1)),
                ("tid", Value::Int(tid)),
            ];
            match e.phase {
                Phase::Counter(v) | Phase::Gauge(v) => {
                    fields.push(("args", Value::obj([("value", Value::Int(v as i64))])));
                }
                Phase::Instant => fields.push(("s", Value::Str("t".into()))),
                Phase::Begin | Phase::End => {}
            }
            out.push(Value::obj(fields));
        }

        let mut doc = vec![
            ("traceEvents", Value::Arr(out)),
            ("displayTimeUnit", Value::Str("ns".into())),
        ];
        if let Some((lo, hi)) = bounds {
            doc.push((
                "morph_bounds",
                Value::Arr(vec![Value::Int(lo as i64), Value::Int(hi as i64)]),
            ));
        }
        Value::obj(doc)
    }

    /// Export [`TraceBuffer::to_perfetto`] as deterministic pretty JSON.
    pub fn to_perfetto_string(&self, bounds: Option<(u64, u64)>) -> String {
        self.to_perfetto(bounds).pretty()
    }

    /// Read a document written by [`TraceBuffer::to_perfetto`] back into
    /// a buffer (plus the `morph_bounds` window, when present). Event
    /// order, names, tracks, timestamps and payloads round-trip exactly.
    pub fn from_perfetto(doc: &Value) -> Result<(TraceBuffer, Option<(u64, u64)>), String> {
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or_else(|| "no \"traceEvents\" array".to_string())?;

        // Pass 1: thread_name metadata maps tids back to track names.
        let mut tracks: BTreeMap<i64, String> = BTreeMap::new();
        for e in events {
            if e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("name").and_then(Value::as_str) == Some("thread_name")
            {
                let tid = e
                    .get("tid")
                    .and_then(Value::as_i64)
                    .ok_or_else(|| "thread_name metadata without integer tid".to_string())?;
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or_else(|| "thread_name metadata without args.name".to_string())?;
                tracks.insert(tid, name.to_string());
            }
        }

        // Pass 2: rebuild the event list in document order.
        let mut out = Vec::new();
        for e in events {
            let ph = e
                .get("ph")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("event without \"ph\": {e:?}"))?;
            if ph == "M" {
                continue;
            }
            let tid = e
                .get("tid")
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("event without integer tid: {e:?}"))?;
            let track = tracks
                .get(&tid)
                .ok_or_else(|| format!("tid {tid} has no thread_name metadata"))?
                .clone();
            let name = e
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("event without name: {e:?}"))?
                .to_string();
            let ts = e
                .get("ts")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event without non-negative integer ts: {e:?}"))?;
            let value = || {
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("counter event without args.value: {e:?}"))
            };
            let phase = match (ph, e.get("cat").and_then(Value::as_str)) {
                ("B", _) => Phase::Begin,
                ("E", _) => Phase::End,
                ("C", Some("gauge")) => Phase::Gauge(value()?),
                ("C", _) => Phase::Counter(value()?),
                ("i", _) => Phase::Instant,
                (other, _) => return Err(format!("unsupported event phase {other:?}")),
            };
            out.push(TraceEvent {
                track,
                name,
                ts,
                phase,
            });
        }

        let bounds = match doc.get("morph_bounds").and_then(Value::as_arr) {
            None => None,
            Some(pair) => {
                let (Some(lo), Some(hi)) = (
                    pair.first().and_then(Value::as_u64),
                    pair.get(1).and_then(Value::as_u64),
                ) else {
                    return Err("morph_bounds is not a [lo, hi] integer pair".to_string());
                };
                Some((lo, hi))
            }
        };
        Ok((
            TraceBuffer {
                events: Mutex::new(out),
            },
            bounds,
        ))
    }

    /// Parse a serialized Perfetto document (see
    /// [`TraceBuffer::from_perfetto`]).
    pub fn from_perfetto_str(text: &str) -> Result<(TraceBuffer, Option<(u64, u64)>), String> {
        let doc = Value::parse(text).map_err(|e| e.to_string())?;
        Self::from_perfetto(&doc)
    }
}

impl Recorder for TraceBuffer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }
}

/// Sort events into the workspace's **canonical trace order**: by
/// timestamp, then track, then phase (span `End` before `Begin`, then
/// counters, gauges, instants), then name, then payload.
///
/// The order is a pure function of the event *set* — any two recordings
/// of the same events, whatever their interleaving (single-threaded
/// cascade order, per-stage parallel buffers), canonicalize to the same
/// sequence, which is what lets the parallel pipeline engine emit
/// byte-identical sidecars to the sequential oracle. `End` sorts before
/// `Begin` at equal timestamps so abutting spans on one track (a
/// `service` span ending exactly where a `blocked_full` span starts)
/// stay properly nested for the trace audit pass.
pub fn canonical_sort(events: &mut [TraceEvent]) {
    let rank = |p: Phase| -> u8 {
        match p {
            Phase::End => 0,
            Phase::Begin => 1,
            Phase::Counter(_) => 2,
            Phase::Gauge(_) => 3,
            Phase::Instant => 4,
        }
    };
    let payload = |p: Phase| -> u64 {
        match p {
            Phase::Counter(v) | Phase::Gauge(v) => v,
            _ => 0,
        }
    };
    events.sort_by(|a, b| {
        (a.ts, &a.track, rank(a.phase), &a.name, payload(a.phase)).cmp(&(
            b.ts,
            &b.track,
            rank(b.phase),
            &b.name,
            payload(b.phase),
        ))
    });
}

impl TraceBuffer {
    /// A copy of this buffer with its events in canonical order (see
    /// [`canonical_sort`]). Use for order-insensitive buffer comparison;
    /// two buffers recording the same events compare equal after
    /// canonicalization regardless of recording interleaving.
    pub fn canonicalized(&self) -> TraceBuffer {
        let mut events = self.events();
        canonical_sort(&mut events);
        TraceBuffer {
            events: Mutex::new(events),
        }
    }
}

/// A [`Recorder`] adapter that prepends a fixed prefix to every event's
/// track before forwarding to an inner recorder. Layers that run the same
/// instrumented code for several contexts (e.g. one pipeline simulation
/// per (backend, network) pair, all emitting `stage:*` tracks) wrap their
/// shared sink so each context lands on its own track namespace.
pub struct PrefixRecorder {
    inner: std::sync::Arc<dyn Recorder>,
    prefix: String,
}

impl PrefixRecorder {
    /// Wrap `inner`, prefixing every track with `prefix`.
    pub fn new(inner: std::sync::Arc<dyn Recorder>, prefix: impl Into<String>) -> Self {
        Self {
            inner,
            prefix: prefix.into(),
        }
    }
}

impl Recorder for PrefixRecorder {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&self, mut event: TraceEvent) {
        event.track = format!("{}{}", self.prefix, event.track);
        self.inner.record(event);
    }
}

/// Chrome `trace_event` phase letter for a [`Phase`].
fn ph_label(p: Phase) -> &'static str {
    match p {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Counter(_) | Phase::Gauge(_) => "C",
        Phase::Instant => "i",
    }
}

/// Category distinguishing counters from gauges on re-import (both share
/// phase letter `C`).
fn cat_label(p: Phase) -> &'static str {
    match p {
        Phase::Begin | Phase::End => "span",
        Phase::Counter(_) => "counter",
        Phase::Gauge(_) => "gauge",
        Phase::Instant => "instant",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        let noop = NoopRecorder;
        assert!(!noop.enabled());
        // Convenience methods are no-ops (nothing to observe — this is
        // exactly the point); they must simply not panic.
        noop.span("t", "s", 0, 5);
        noop.counter("t", "c", 1, 2);
        noop.instant("t", "i", 3);
    }

    #[test]
    fn buffer_records_in_call_order() {
        let buf = TraceBuffer::new();
        assert!(buf.is_empty());
        buf.span_begin("a", "s", 0);
        buf.counter("b", "c", 1, 10);
        buf.gauge("b", "g", 2, 3);
        buf.instant("a", "mark", 3);
        buf.span_end("a", "s", 4);
        let evs = buf.events();
        assert_eq!(buf.len(), 5);
        assert_eq!(evs[0].phase, Phase::Begin);
        assert_eq!(evs[1].phase, Phase::Counter(10));
        assert_eq!(evs[2].phase, Phase::Gauge(3));
        assert_eq!(evs[3].phase, Phase::Instant);
        assert_eq!(evs[4].phase, Phase::End);
        assert_eq!(evs[4].ts, 4);
    }

    #[test]
    fn filter_splits_domains() {
        let buf = TraceBuffer::new();
        buf.span("stage:x", "service", 0, 9);
        buf.span("eval:y", "layer", 100, 200);
        let sim = buf.filter(|e| e.track.starts_with("stage:"));
        assert_eq!(sim.len(), 2);
        assert!(sim.events().iter().all(|e| e.track == "stage:x"));
    }

    #[test]
    fn prefix_recorder_namespaces_tracks() {
        let buf = std::sync::Arc::new(TraceBuffer::new());
        let wrapped = PrefixRecorder::new(buf.clone(), "pipe:Morph/c3d/");
        assert!(wrapped.enabled());
        wrapped.span("stage:0:conv1", "service", 0, 4);
        let evs = buf.events();
        assert!(evs
            .iter()
            .all(|e| e.track == "pipe:Morph/c3d/stage:0:conv1"));
        // A disabled inner recorder disables the wrapper's gates too.
        let off = PrefixRecorder::new(std::sync::Arc::new(NoopRecorder), "x/");
        assert!(!off.enabled());
    }

    #[test]
    fn perfetto_document_shape() {
        let buf = TraceBuffer::new();
        buf.span_begin("stage:conv", "service", 5);
        buf.span_end("stage:conv", "service", 15);
        let doc = buf.to_perfetto(Some((0, 20)));
        let evs = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        // One thread_name metadata record plus the two span edges.
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].get("ph").and_then(Value::as_str), Some("M"));
        assert_eq!(evs[1].get("ph").and_then(Value::as_str), Some("B"));
        assert_eq!(evs[2].get("ph").and_then(Value::as_str), Some("E"));
        assert_eq!(evs[1].get("tid"), evs[2].get("tid"));
        let bounds = doc.get("morph_bounds").and_then(Value::as_arr).unwrap();
        assert_eq!(bounds[0].as_u64(), Some(0));
        assert_eq!(bounds[1].as_u64(), Some(20));
    }

    /// Deterministic xorshift generator for the seeded round-trip test.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn seeded_roundtrip_through_morph_json() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let buf = TraceBuffer::new();
        let tracks = ["stage:a", "edge:0->1", "search:x", "eval:Morph#0"];
        // Keep per-track span stacks balanced so the sample is also a
        // valid input for the audit pass downstream.
        let mut open: Vec<Vec<String>> = vec![Vec::new(); tracks.len()];
        let mut clock = 0u64;
        for i in 0..200 {
            let t = (rng.next() % tracks.len() as u64) as usize;
            clock += rng.next() % 17;
            match rng.next() % 5 {
                0 => {
                    let name = format!("span{}", i % 7);
                    buf.span_begin(tracks[t], &name, clock);
                    open[t].push(name);
                }
                1 => {
                    if let Some(name) = open[t].pop() {
                        buf.span_end(tracks[t], &name, clock);
                    }
                }
                2 => buf.counter(tracks[t], "count", clock, i),
                3 => buf.gauge(tracks[t], "level", clock, rng.next() % 9),
                _ => buf.instant(tracks[t], "mark", clock),
            }
        }
        for (t, stack) in open.iter_mut().enumerate() {
            while let Some(name) = stack.pop() {
                clock += 1;
                buf.span_end(tracks[t], &name, clock);
            }
        }

        let text = buf.to_perfetto_string(Some((0, clock)));
        let (back, bounds) = TraceBuffer::from_perfetto_str(&text).unwrap();
        assert_eq!(back.events(), buf.events());
        assert_eq!(bounds, Some((0, clock)));
        // And the export of the re-import is byte-identical.
        assert_eq!(back.to_perfetto_string(bounds), text);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(TraceBuffer::from_perfetto_str("{}").is_err());
        assert!(TraceBuffer::from_perfetto_str("not json").is_err());
        // An event referencing a tid with no thread_name metadata.
        let text = r#"{"traceEvents": [
            {"ph": "B", "name": "s", "cat": "span", "ts": 0, "pid": 1, "tid": 9}
        ]}"#;
        assert!(TraceBuffer::from_perfetto_str(text).is_err());
    }
}
