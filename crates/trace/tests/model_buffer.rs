//! Model-checked property of the shipping [`TraceBuffer`]: concurrent
//! recorders never lose an event. The buffer's mutex is the morph-check
//! shim, so the checker drives every `record` through the deterministic
//! scheduler across 1k+ distinct interleavings.

use morph_check::{explore, Config};
use morph_trace::{Phase, Recorder, TraceBuffer, TraceEvent};

fn event(track: usize, i: u64) -> TraceEvent {
    TraceEvent {
        track: format!("track{track}"),
        name: "tick".to_string(),
        ts: i,
        phase: Phase::Instant,
    }
}

#[test]
fn concurrent_recording_loses_no_events() {
    let cfg = Config {
        max_exhaustive: 8000,
        samples: 500,
        ..Config::default()
    }
    .env_scaled();
    let report = explore(&cfg, || {
        let buf = TraceBuffer::new();
        let buf = &buf;
        morph_check::thread::scope(|s| {
            for t in 0..3 {
                s.spawn(move || {
                    for i in 0..3 {
                        buf.record(event(t, i));
                    }
                });
            }
        });
        assert_eq!(buf.len(), 9, "every recorded event must be kept");
        // Per-track order is preserved (each worker records in ts order
        // under one lock per event).
        let events = buf.events();
        for t in 0..3 {
            let track = format!("track{t}");
            let ts: Vec<u64> = events
                .iter()
                .filter(|e| e.track == track)
                .map(|e| e.ts)
                .collect();
            assert_eq!(ts, vec![0, 1, 2], "track {track} order scrambled");
        }
    });
    report.assert_ok();
    assert!(
        report.schedules_explored >= 1000,
        "acceptance: >= 1k distinct schedules, got {} (+{} pruned)",
        report.schedules_explored,
        report.schedules_pruned
    );
}
