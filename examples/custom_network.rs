//! Define a custom 3D CNN (a small surveillance-style action recognizer,
//! the kind of edge workload the paper's introduction motivates) and
//! compare the three accelerators on it through a `Session`.
//!
//! ```sh
//! cargo run --release -p morph-core --example custom_network
//! ```

use morph_core::{Eyeriss, Morph, MorphBase, Session};
use morph_nets::Network;
use morph_tensor::pool::PoolShape;
use morph_tensor::shape::ConvShape;

/// A compact 3D CNN for 8-frame 64×64 clips (e.g. drone footage), with an
/// Inception-style fork — the graph builder expresses the branch structure
/// directly, and the exact edge validator checks every connection.
fn drone_net() -> Network {
    let mut net = Network::new("DroneNet");
    net.conv(
        "conv1",
        ConvShape::new_3d(64, 64, 8, 3, 32, 3, 3, 3).with_pad(1, 1),
    );
    net.pool("pool1", PoolShape::new(1, 2, 2).with_stride(2, 1));
    net.conv(
        "conv2",
        ConvShape::new_3d(32, 32, 8, 32, 64, 3, 3, 3).with_pad(1, 1),
    );
    net.pool("pool2", PoolShape::new(2, 2, 2));
    // A two-branch module: 3×3×3 tower next to a cheap 1×1×1 tower,
    // concatenated channel-wise (64 + 64 = 128).
    let mut module = net.fork();
    module.branch().conv(
        "mix/3x3",
        ConvShape::new_3d(16, 16, 4, 64, 64, 3, 3, 3).with_pad(1, 1),
    );
    module
        .branch()
        .conv("mix/1x1", ConvShape::new_3d(16, 16, 4, 64, 64, 1, 1, 1));
    module.concat("mix/concat");
    net.conv(
        "conv3b",
        ConvShape::new_3d(16, 16, 4, 128, 128, 3, 3, 3).with_pad(1, 1),
    );
    net.pool("pool3", PoolShape::new(2, 2, 2));
    net.conv(
        "conv4",
        ConvShape::new_3d(8, 8, 2, 128, 256, 3, 3, 3).with_pad(1, 1),
    );
    net
}

fn main() {
    let net = drone_net();
    net.validate().expect("every edge shape-checks exactly");
    println!(
        "{}: {} conv layers, {:.2} GMACs, {:.1} avg MACCs/byte reuse\n",
        net.name,
        net.num_conv_layers(),
        net.total_maccs() as f64 / 1e9,
        net.avg_reuse()
    );

    let report = Session::builder()
        .backend(Eyeriss::builder().build())
        .backend(MorphBase::builder().build())
        .backend(Morph::builder().build())
        .network(net)
        .build()
        .run();

    println!(
        "{:12} {:>12} {:>10} {:>26}",
        "accelerator", "energy (uJ)", "norm", "breakdown DRAM/L2/L1/L0/MAC"
    );
    let baseline = &report.runs[0];
    for r in &report.runs {
        let b = r.breakdown_percent();
        println!(
            "{:12} {:>12.1} {:>9.2}x   {:>4.0}%/{:>3.0}%/{:>3.0}%/{:>3.0}%/{:>3.0}%",
            r.backend,
            r.total.total_pj() / 1e6,
            r.normalized_energy(baseline),
            b[0],
            b[1],
            b[2],
            b[3],
            b[4]
        );
    }
    println!(
        "\nMorph perf/W vs Morph_base: {:.2}x",
        report.runs[2].normalized_perf_per_watt(&report.runs[1])
    );
}
