//! Run the functional Morph chip on real tensors: two different dataflows
//! for the same layer produce bit-identical outputs (checked against the
//! reference convolution) with very different traffic — the configurability
//! claim of §IV-B, executed rather than merely modeled.
//!
//! ```sh
//! cargo run --release -p morph-core --example hw_sim_demo
//! ```

use morph_core::ArchSpec;
use morph_dataflow::config::TilingConfig;
use morph_hw::MorphChip;
use morph_tensor::prelude::*;

fn main() {
    // A small layer so the functional simulation is instant.
    let layer = ConvShape::new_3d(12, 12, 6, 8, 16, 3, 3, 3).with_pad(1, 1);
    let input = synth_input(&layer, 42);
    let filters = synth_filters(&layer, 43);
    let reference = conv3d_reference(&layer, &input, &filters);

    let input_stationary = TilingConfig::morph(
        "WHCFK".parse().unwrap(),
        "cfwhk".parse().unwrap(),
        Tile {
            h: 12,
            w: 12,
            f: 6,
            c: 8,
            k: 4,
        },
        Tile {
            h: 6,
            w: 6,
            f: 3,
            c: 8,
            k: 4,
        },
        Tile {
            h: 3,
            w: 3,
            f: 3,
            c: 4,
            k: 4,
        },
        8,
    )
    .normalize(&layer);
    let weight_stationary = TilingConfig::morph(
        "KCWHF".parse().unwrap(),
        "whcfk".parse().unwrap(),
        Tile {
            h: 6,
            w: 6,
            f: 3,
            c: 8,
            k: 16,
        },
        Tile {
            h: 3,
            w: 3,
            f: 3,
            c: 8,
            k: 16,
        },
        Tile {
            h: 3,
            w: 3,
            f: 1,
            c: 4,
            k: 8,
        },
        8,
    )
    .normalize(&layer);

    for (name, cfg) in [
        ("input-stationary", input_stationary),
        ("weight-stationary", weight_stationary),
    ] {
        let mut chip = MorphChip::new(ArchSpec::morph());
        chip.configure(&layer, &cfg)
            .expect("tiles fit the banked buffers");
        let (out, counters) = chip.run_layer(&layer, &cfg, &input, &filters);
        assert_eq!(
            out.as_slice(),
            reference.as_slice(),
            "bit-exact vs Algorithm 1"
        );
        println!(
            "{:17} outer [{}] inner [{}]: DRAM reads {:>8} B, L2 traffic {:>9} B, MACCs {}",
            name,
            cfg.outer_order(),
            cfg.inner_order().to_lowercase(),
            counters.dram_reads,
            counters.l2.total(),
            counters.maccs
        );
    }
    println!("\nBoth dataflows verified bit-exact against conv3d_reference.");
}
