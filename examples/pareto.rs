//! Pareto sweep quickstart: trade streaming throughput against energy
//! and peak power by reallocating cluster shares across a fork/join
//! network, optionally under a power cap.
//!
//! ```sh
//! cargo run --release -p morph-core --example pareto
//! ```

use morph_core::{ArchSpec, Morph, PipelineMode, Session};
use morph_nets::Network;
use morph_tensor::shape::ConvShape;

/// A toy inception-style module: stem -> {1x1 branch, 1x1+3x3 branch} ->
/// concat -> head. The two branches are concurrently live, so they
/// compete for the same compute clusters — exactly what the sweep
/// reallocates.
fn toy_net() -> Network {
    let mut net = Network::new("toy-inception");
    net.conv(
        "stem",
        ConvShape::new_3d(14, 14, 4, 8, 32, 3, 3, 3).with_pad(1, 1),
    );
    let mut f = net.fork();
    f.branch()
        .conv("b0", ConvShape::new_3d(14, 14, 4, 32, 16, 1, 1, 1));
    f.branch()
        .conv("b1_reduce", ConvShape::new_3d(14, 14, 4, 32, 8, 1, 1, 1))
        .conv(
            "b1_3x3",
            ConvShape::new_3d(14, 14, 4, 8, 16, 3, 3, 3).with_pad(1, 1),
        );
    f.concat("mix");
    net.conv("head", ConvShape::new_3d(14, 14, 4, 32, 32, 1, 1, 1));
    net.validate().expect("every edge shape-checks");
    net
}

fn main() {
    // A 4-cluster Morph keeps the sweep quick; any ArchSpec works.
    let arch = ArchSpec {
        clusters: 4,
        ..ArchSpec::morph()
    };

    // Sweep unconstrained first: the full throughput/energy/power
    // frontier of cluster-share allocations.
    let report = Session::builder()
        .backend(Morph::builder().arch(arch).build())
        .network(toy_net())
        .pipeline(PipelineMode::Pareto { power_cap_mw: None })
        .build()
        .run();
    let pipeline = report.runs[0].pipeline.as_ref().unwrap();
    let pareto = pipeline.pareto.as_ref().unwrap();
    println!(
        "uncapped frontier ({} of {} evaluated allocations survive domination):",
        pareto.points.len(),
        pareto.candidates
    );
    for p in &pareto.points {
        println!(
            "  {:>8.1} frames/s  {:>6.3} mJ/frame  {:>5.0} mW peak  clusters {:?}",
            p.steady_fps,
            p.energy_per_frame_pj / 1e9,
            p.peak_power_mw,
            p.clusters
        );
    }

    // Now cap peak power at the frontier's midpoint: every reported
    // point respects the cap and the schedule is the fastest capped one.
    let hottest = pareto
        .points
        .iter()
        .map(|p| p.peak_power_mw)
        .fold(0.0f64, f64::max);
    let coolest = pareto
        .points
        .iter()
        .map(|p| p.peak_power_mw)
        .fold(f64::INFINITY, f64::min);
    // Never floor below the coolest point: even a flat frontier leaves
    // the cap attainable.
    let cap = (f64::midpoint(coolest, hottest) as u64).max(coolest.ceil() as u64);
    let capped = Session::builder()
        .backend(Morph::builder().arch(arch).build())
        .network(toy_net())
        .pipeline(PipelineMode::Pareto {
            power_cap_mw: Some(cap),
        })
        .build()
        .run();
    let p = capped.runs[0].pipeline.as_ref().unwrap();
    println!("\nunder a {cap} mW cap the scheduler picks:");
    println!(
        "  {:>8.1} frames/s  {:>6.3} mJ/frame  {:>5.0} mW peak  (bottleneck {})",
        p.steady_fps,
        p.energy_per_frame_pj / 1e9,
        p.peak_power_mw,
        p.bottleneck
    );
    assert!(p.peak_power_mw <= cap as f64, "the cap binds the schedule");
    for point in &p.pareto.as_ref().unwrap().points {
        assert!(
            point.peak_power_mw <= cap as f64,
            "every point obeys the cap"
        );
    }
}
