//! Quickstart: evaluate one 3D CNN layer on the three accelerators.
//!
//! ```sh
//! cargo run --release -p morph-core --example quickstart
//! ```

use morph_core::{Backend, Eyeriss, Morph, MorphBase};
use morph_tensor::shape::ConvShape;

fn main() {
    // C3D's layer3a: 128→256 channels, 8 frames, 28×28, 3×3×3 filters.
    let layer = ConvShape::new_3d(28, 28, 8, 128, 256, 3, 3, 3).with_pad(1, 1);
    println!(
        "Layer: {}x{}x{} input, C={} K={}, {:.2} GMACs\n",
        layer.h,
        layer.w,
        layer.f,
        layer.c,
        layer.k,
        layer.maccs() as f64 / 1e9
    );

    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(Eyeriss::builder().build()),
        Box::new(MorphBase::builder().build()),
        Box::new(Morph::builder().build()),
    ];

    println!(
        "{:12} {:>12} {:>12} {:>10} {:>8}",
        "accelerator", "energy (uJ)", "dynamic (uJ)", "cycles", "util %"
    );
    let mut totals = Vec::new();
    for b in &backends {
        let r = b.run_layer(&layer);
        println!(
            "{:12} {:>12.1} {:>12.1} {:>10} {:>8.1}",
            b.name(),
            r.total_pj() / 1e6,
            r.dynamic_pj() / 1e6,
            r.cycles.total,
            100.0 * r.cycles.utilization()
        );
        totals.push(r.total_pj());
    }
    println!(
        "\nMorph vs Morph_base: {:.2}x energy | Morph vs Eyeriss: {:.2}x energy",
        totals[1] / totals[2],
        totals[0] / totals[2]
    );

    // Show the configuration the optimizer chose (Table III row style).
    let d = backends[2].evaluate_layer(&layer).decision.unwrap();
    println!(
        "\nChosen config: outer [{}], inner [{}], L2 tile {:?}, par {:?}",
        d.config.outer_order(),
        d.config.inner_order().to_lowercase(),
        d.config.levels[0].tile,
        d.par
    );
}
