//! Quickstart: evaluate one 3D CNN layer on the three accelerators.
//!
//! ```sh
//! cargo run --release -p morph-core --example quickstart
//! ```

use morph_core::{Accelerator, Objective};
use morph_tensor::shape::ConvShape;

fn main() {
    // C3D's layer3a: 128→256 channels, 8 frames, 28×28, 3×3×3 filters.
    let layer = ConvShape::new_3d(28, 28, 8, 128, 256, 3, 3, 3).with_pad(1, 1);
    println!(
        "Layer: {}x{}x{} input, C={} K={}, {:.2} GMACs\n",
        layer.h,
        layer.w,
        layer.f,
        layer.c,
        layer.k,
        layer.maccs() as f64 / 1e9
    );

    let morph = Accelerator::morph();
    let base = Accelerator::morph_base();
    let eyeriss = Accelerator::eyeriss();

    println!("{:12} {:>12} {:>12} {:>10} {:>8}", "accelerator", "energy (uJ)", "dynamic (uJ)", "cycles", "util %");
    let mut reports = Vec::new();
    for acc in [&eyeriss, &base, &morph] {
        let r = acc.run_layer(&layer, Objective::Energy);
        println!(
            "{:12} {:>12.1} {:>12.1} {:>10} {:>8.1}",
            acc.name(),
            r.total_pj() / 1e6,
            r.dynamic_pj() / 1e6,
            r.cycles.total,
            100.0 * r.cycles.utilization()
        );
        reports.push(r.total_pj());
    }
    println!(
        "\nMorph vs Morph_base: {:.2}x energy | Morph vs Eyeriss: {:.2}x energy",
        reports[1] / reports[2],
        reports[0] / reports[2]
    );

    // Show the configuration the optimizer chose (Table III row style).
    let d = morph.decide_layer(&layer, Objective::Energy).unwrap();
    println!(
        "\nChosen config: outer [{}], inner [{}], L2 tile {:?}, par {:?}",
        d.config.outer_order(),
        d.config.inner_order().to_lowercase(),
        d.config.levels[0].tile,
        d.par
    );
}
