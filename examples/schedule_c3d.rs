//! Schedule C3D with the Morph backend and persist the result —
//! the §V "configuration file can be saved and recalled" workflow and the
//! source of the paper's Table III.
//!
//! ```sh
//! cargo run --release -p morph-core --example schedule_c3d
//! ```

use morph_core::{Morph, Session};
use morph_nets::zoo;
use morph_optimizer::schedule::{from_text, to_text, ScheduleEntry};

fn main() {
    let report = Session::builder()
        .backend(Morph::builder().build())
        .network(zoo::c3d())
        .build()
        .run();
    let run = &report.runs[0];

    println!("C3D configuration optimized for energy (Table III analogue):\n");
    println!(
        "{:10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "layer", "outer", "inner", "Kt", "Ht", "Ft", "Kp*Vw"
    );
    let mut entries = Vec::new();
    for layer in &run.layers {
        let d = layer
            .decision
            .as_ref()
            .expect("Morph always reports a mapping");
        let l2 = d.config.levels[0].tile;
        // The paper reports Ht in input coordinates (incl. halo/pad).
        let ht_in = (l2.h - 1) * layer.shape.stride + layer.shape.r;
        println!(
            "{:10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8}",
            layer.name,
            d.config.outer_order().to_string(),
            d.config.inner_order().to_lowercase(),
            l2.k,
            ht_in,
            l2.f,
            d.par.kp * 8
        );
        entries.push(ScheduleEntry {
            layer: layer.name.clone(),
            config: d.config.clone(),
            par: d.par,
        });
    }

    // Persist and recall (§V).
    let text = to_text(&entries);
    let path = std::env::temp_dir().join("c3d_schedule.txt");
    std::fs::write(&path, &text).expect("write schedule");
    let recalled = from_text(&std::fs::read_to_string(&path).unwrap()).expect("parse schedule");
    assert_eq!(recalled, entries);
    println!(
        "\nSchedule saved to {} and round-tripped ({} layers).",
        path.display(),
        recalled.len()
    );
}
