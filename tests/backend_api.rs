//! Integration tests for the `Backend` trait / `Session` / `RunReport`
//! API: trait-object dispatch parity with directly-driven models, JSON
//! round-tripping, and decision-cache behavior on repeated layer shapes.

use morph_core::{
    ArchSpec, Backend, Effort, EnergyModel, Eyeriss, Morph, MorphBase, Objective, Optimizer,
    RunReport, Session, TechNode,
};
use morph_nets::Network;
use morph_tensor::shape::ConvShape;

fn layer() -> ConvShape {
    ConvShape::new_3d(14, 14, 4, 32, 64, 3, 3, 3).with_pad(1, 1)
}

/// A network whose middle block repeats one shape three times.
fn resnet_like() -> Network {
    let stem = ConvShape::new_3d(16, 16, 4, 8, 16, 3, 3, 3).with_pad(1, 1);
    let block = ConvShape::new_3d(16, 16, 4, 16, 16, 3, 3, 3).with_pad(1, 1);
    let head = ConvShape::new_3d(8, 8, 2, 16, 32, 3, 3, 2).with_pad(1, 0);
    let mut n = Network::new("resnet-like");
    n.conv("stem", stem)
        .conv("block1", block)
        .conv("block2", block)
        .conv("block3", block)
        .conv("head", head);
    n
}

/// Trait-object dispatch produces exactly the numbers of the directly
/// driven optimizer — the redesign changed the API surface, not the math.
#[test]
fn morph_dispatch_parity_with_direct_optimizer() {
    let sh = layer();
    let via_trait: Box<dyn Backend> = Box::new(Morph::new());
    let r_trait = via_trait.run_layer(&sh);

    let direct = Optimizer::morph(EnergyModel::morph(ArchSpec::morph()), Effort::Fast)
        .search_layer(&sh, Objective::Energy);
    assert_eq!(r_trait, direct.report);

    let d_trait = via_trait.evaluate_layer(&sh).decision.unwrap();
    assert_eq!(d_trait.config, direct.config);
    assert_eq!(d_trait.par, direct.par);
}

/// Morph_base parity with the directly driven baseline optimizer.
#[test]
fn morph_base_dispatch_parity_with_direct_optimizer() {
    let sh = layer();
    let via_trait: Box<dyn Backend> = Box::new(MorphBase::new());
    let direct = Optimizer::morph_base(EnergyModel::morph_base(ArchSpec::morph()))
        .search_layer(&sh, Objective::Energy);
    assert_eq!(via_trait.run_layer(&sh), direct.report);
}

/// Eyeriss parity with the directly driven frame-by-frame model.
#[test]
fn eyeriss_dispatch_parity_with_direct_model() {
    let sh = layer();
    let via_trait: Box<dyn Backend> = Box::new(Eyeriss::new());
    let direct = morph_eyeriss::Eyeriss::table2().evaluate_layer(&sh);
    assert_eq!(via_trait.run_layer(&sh), direct);
    assert!(via_trait.evaluate_layer(&sh).decision.is_none());
}

/// A session over trait objects matches per-backend direct evaluation,
/// layer by layer.
#[test]
fn session_matches_per_layer_direct_evaluation() {
    let net = resnet_like();
    let report = Session::builder()
        .backend(Morph::new())
        .backend(Eyeriss::new())
        .network(net.clone())
        .build()
        .run();

    let morph = Morph::new();
    let eyeriss = morph_eyeriss::Eyeriss::table2();
    for (layer, rec) in net.conv_layers().zip(&report.runs[0].layers) {
        assert_eq!(rec.report, morph.run_layer(&layer.shape), "{}", layer.name);
    }
    for (layer, rec) in net.conv_layers().zip(&report.runs[1].layers) {
        assert_eq!(
            rec.report,
            eyeriss.evaluate_layer(&layer.shape),
            "{}",
            layer.name
        );
    }
}

/// RunReport → JSON → RunReport is the identity, including mapping
/// decisions, shapes, cycle counts and float-exact energies.
#[test]
fn run_report_json_round_trip() {
    let report = Session::builder()
        .backend(Morph::builder().objective(Objective::PerfPerWatt).build())
        .backend(Eyeriss::builder().tech(TechNode::Nm22).build())
        .network(resnet_like())
        .build()
        .run();
    let json = report.to_json_string();
    let back = RunReport::from_json_str(&json).unwrap();
    assert_eq!(report, back);

    // Spot-check that decisions really are carried through the text form.
    let run = back.find("Morph", "resnet-like").unwrap();
    assert_eq!(run.objective, Objective::PerfPerWatt);
    assert!(run.layers.iter().all(|l| l.decision.is_some()));
    let eyeriss_run = back.find("Eyeriss", "resnet-like").unwrap();
    assert!(eyeriss_run.layers.iter().all(|l| l.decision.is_none()));
}

/// Repeated layer shapes are decided once: the three identical residual
/// blocks produce two cache hits, and their records are identical.
#[test]
fn decision_cache_hits_on_repeated_shapes() {
    let session = Session::builder()
        .backend(Morph::new())
        .network(resnet_like())
        .build();
    let report = session.run();
    let run = &report.runs[0];
    assert_eq!(run.layers.len(), 5);
    assert_eq!(run.cache_hits, 2, "block2/block3 repeat block1's shape");
    assert_eq!(session.cached_decisions(), 3, "stem, block, head");
    assert_eq!(run.layers[1], run.layers[2].clone_named("block1"));
    // A second run of the same session is served entirely from the cache
    // and reproduces the exact same report.
    let again = session.run();
    assert_eq!(again.runs[0].cache_hits, 5);
    assert_eq!(again.runs[0].layers, run.layers);
}

trait CloneNamed {
    fn clone_named(&self, name: &str) -> Self;
}

impl CloneNamed for morph_core::LayerRecord {
    fn clone_named(&self, name: &str) -> Self {
        let mut c = self.clone();
        c.name = name.to_string();
        c
    }
}
