//! Integration tests for the `Backend` trait / `Session` / `RunReport`
//! API: trait-object dispatch parity with directly-driven models, JSON
//! round-tripping, and decision-cache behavior on repeated layer shapes.

use morph_core::{
    ArchSpec, Backend, Effort, EnergyModel, Eyeriss, Morph, MorphBase, Objective, Optimizer,
    PipelineMode, RunReport, Session, TechNode,
};
use morph_nets::Network;
use morph_tensor::shape::ConvShape;

fn layer() -> ConvShape {
    ConvShape::new_3d(14, 14, 4, 32, 64, 3, 3, 3).with_pad(1, 1)
}

/// A network whose middle block repeats one shape three times.
fn resnet_like() -> Network {
    let stem = ConvShape::new_3d(16, 16, 4, 8, 16, 3, 3, 3).with_pad(1, 1);
    let block = ConvShape::new_3d(16, 16, 4, 16, 16, 3, 3, 3).with_pad(1, 1);
    let head = ConvShape::new_3d(8, 8, 2, 16, 32, 3, 3, 2).with_pad(1, 0);
    let mut n = Network::new("resnet-like");
    n.conv("stem", stem)
        .conv("block1", block)
        .conv("block2", block)
        .conv("block3", block)
        .conv("head", head);
    n
}

/// Trait-object dispatch produces exactly the numbers of the directly
/// driven optimizer — the redesign changed the API surface, not the math.
#[test]
fn morph_dispatch_parity_with_direct_optimizer() {
    let sh = layer();
    let via_trait: Box<dyn Backend> = Box::new(Morph::new());
    let r_trait = via_trait.run_layer(&sh);

    let direct = Optimizer::morph(EnergyModel::morph(ArchSpec::morph()), Effort::Fast)
        .search_layer(&sh, Objective::Energy);
    assert_eq!(r_trait, direct.report);

    let d_trait = via_trait.evaluate_layer(&sh).decision.unwrap();
    assert_eq!(d_trait.config, direct.config);
    assert_eq!(d_trait.par, direct.par);
}

/// Morph_base parity with the directly driven baseline optimizer.
#[test]
fn morph_base_dispatch_parity_with_direct_optimizer() {
    let sh = layer();
    let via_trait: Box<dyn Backend> = Box::new(MorphBase::new());
    let direct = Optimizer::morph_base(EnergyModel::morph_base(ArchSpec::morph()))
        .search_layer(&sh, Objective::Energy);
    assert_eq!(via_trait.run_layer(&sh), direct.report);
}

/// Eyeriss parity with the directly driven frame-by-frame model.
#[test]
fn eyeriss_dispatch_parity_with_direct_model() {
    let sh = layer();
    let via_trait: Box<dyn Backend> = Box::new(Eyeriss::new());
    let direct = morph_eyeriss::Eyeriss::table2().evaluate_layer(&sh);
    assert_eq!(via_trait.run_layer(&sh), direct);
    assert!(via_trait.evaluate_layer(&sh).decision.is_none());
}

/// A session over trait objects matches per-backend direct evaluation,
/// layer by layer.
#[test]
fn session_matches_per_layer_direct_evaluation() {
    let net = resnet_like();
    let report = Session::builder()
        .backend(Morph::new())
        .backend(Eyeriss::new())
        .network(net.clone())
        .build()
        .run();

    let morph = Morph::new();
    let eyeriss = morph_eyeriss::Eyeriss::table2();
    for (layer, rec) in net.conv_layers().zip(&report.runs[0].layers) {
        assert_eq!(rec.report, morph.run_layer(&layer.shape), "{}", layer.name);
    }
    for (layer, rec) in net.conv_layers().zip(&report.runs[1].layers) {
        assert_eq!(
            rec.report,
            eyeriss.evaluate_layer(&layer.shape),
            "{}",
            layer.name
        );
    }
}

/// RunReport → JSON → RunReport is the identity, including mapping
/// decisions, shapes, cycle counts and float-exact energies.
#[test]
fn run_report_json_round_trip() {
    let report = Session::builder()
        .backend(Morph::builder().objective(Objective::PerfPerWatt).build())
        .backend(Eyeriss::builder().tech(TechNode::Nm22).build())
        .network(resnet_like())
        .build()
        .run();
    let json = report.to_json_string();
    let back = RunReport::from_json_str(&json).unwrap();
    assert_eq!(report, back);

    // Spot-check that decisions really are carried through the text form.
    let run = back.find("Morph", "resnet-like").unwrap();
    assert_eq!(run.objective, Objective::PerfPerWatt);
    assert!(run.layers.iter().all(|l| l.decision.is_some()));
    let eyeriss_run = back.find("Eyeriss", "resnet-like").unwrap();
    assert!(eyeriss_run.layers.iter().all(|l| l.decision.is_none()));
}

/// Repeated layer shapes are decided once: the three identical residual
/// blocks produce two cache hits, and their records are identical.
#[test]
fn decision_cache_hits_on_repeated_shapes() {
    let session = Session::builder()
        .backend(Morph::new())
        .network(resnet_like())
        .build();
    let report = session.run();
    let run = &report.runs[0];
    assert_eq!(run.layers.len(), 5);
    assert_eq!(run.cache_hits, 2, "block2/block3 repeat block1's shape");
    assert_eq!(session.cached_decisions(), 3, "stem, block, head");
    assert_eq!(run.layers[1], run.layers[2].clone_named("block1"));
    // A second run of the same session is served entirely from the cache
    // and reproduces the exact same report.
    let again = session.run();
    assert_eq!(again.runs[0].cache_hits, 5);
    assert_eq!(again.runs[0].layers, run.layers);
}

/// A second network sharing one shape with `resnet_like` (its stem).
fn pool_like() -> Network {
    let stem = ConvShape::new_3d(16, 16, 4, 8, 16, 3, 3, 3).with_pad(1, 1);
    let tail = ConvShape::new_3d(16, 16, 4, 16, 8, 3, 3, 3).with_pad(1, 1);
    let mut n = Network::new("pool-like");
    n.conv("stem", stem).conv("tail", tail);
    n
}

/// Concurrent pair execution (all backend × network pairs fan out over one
/// worker pool) must produce reports identical to sequential execution —
/// including per-pair `cache_hits`, which keep sequential semantics.
#[test]
fn concurrent_pair_execution_matches_sequential() {
    let build = |threads: usize| {
        Session::builder()
            .backend(Morph::new())
            .backend(MorphBase::new())
            .backend(Eyeriss::new())
            .network(resnet_like())
            .network(pool_like())
            .threads(threads)
            .pipeline(PipelineMode::Rebalanced)
            .build()
    };
    let concurrent = build(8).run();
    let sequential = build(1).run();
    assert_eq!(concurrent, sequential);
    assert_eq!(concurrent.runs.len(), 6);
    // Cross-pair sharing still registers: pool-like's stem repeats
    // resnet-like's stem on every backend.
    for pair in concurrent.runs.chunks(2) {
        assert!(pair[1].cache_hits >= 1, "{}", pair[1].backend);
    }
}

/// Session cache persistence: a re-run of the same session serves every
/// layer from the decision store, a second network sharing shapes
/// registers hits, and reports (search stats included) stay identical.
#[test]
fn session_cache_persists_across_runs_and_shared_shapes() {
    let session = Session::builder()
        .backend(Morph::new())
        .network(resnet_like())
        .network(pool_like())
        .build();
    let first = session.run();
    // resnet-like: 5 layers, 3 distinct shapes → 2 hits; pool-like's stem
    // repeats resnet-like's stem → 1 of its 2 layers hits.
    assert_eq!(first.runs[0].cache_hits, 2);
    assert_eq!(first.runs[1].cache_hits, 1);
    assert_eq!(session.cached_decisions(), 4);
    // Re-running decides nothing new: every layer is a store hit and the
    // reports are bit-identical, including the recorded search stats.
    let second = session.run();
    assert_eq!(second.runs[0].cache_hits, 5, "all resnet-like layers hit");
    assert_eq!(second.runs[1].cache_hits, 2, "all pool-like layers hit");
    assert_eq!(second.runs[0].layers, first.runs[0].layers);
    assert_eq!(second.runs[0].search, first.runs[0].search);
    assert_eq!(session.cached_decisions(), 4, "no new decisions");
}

/// Budgeted and unbudgeted decisions never collide: a sub-chip evaluation
/// made before a session run must not be mistaken for a full-chip
/// decision of the same shape/objective.
#[test]
fn budgeted_and_unbudgeted_keys_never_collide() {
    let backend = Morph::new();
    let stem = ConvShape::new_3d(16, 16, 4, 8, 16, 3, 3, 3).with_pad(1, 1);
    // Pre-populate the backend's store with a *budgeted* decision for the
    // stem shape under the session's own objective.
    let half = backend.evaluate_layer_budgeted(&stem, Objective::Energy, 3);
    assert_eq!(backend.decision_store().unwrap().len(), 1);

    let session = Session::builder()
        .backend(backend)
        .network(resnet_like())
        .build();
    let report = session.run();
    // The stem still counts as fresh work — only the repeated blocks hit.
    assert_eq!(report.runs[0].cache_hits, 2);
    // Its record matches a cold full-chip evaluation, not the budgeted one.
    let full = Morph::new().evaluate_layer(&stem);
    let rec = report.runs[0].layer("stem").unwrap();
    assert_eq!(rec.report, full.report);
    assert_eq!(rec.decision, full.decision);
    // Both keys coexist: 3 full-chip decisions plus the budgeted entry.
    assert_eq!(session.cached_decisions(), 4);
    // A collision would be visible: the reduced chip can only be slower.
    assert!(half.report.cycles.total >= full.report.cycles.total);
}

/// Schema v5: runs of searched backends carry the mapping-search stats
/// behind their decisions; fixed backends carry none. Stats are
/// deterministic across thread counts and survive the JSON round trip.
#[test]
fn run_reports_carry_search_stats() {
    let build = |threads| {
        Session::builder()
            .backend(Morph::new())
            .backend(Eyeriss::new())
            .network(resnet_like())
            .threads(threads)
            .build()
    };
    let par = build(8).run();
    let seq = build(1).run();
    assert_eq!(par, seq, "stats must not depend on worker scheduling");
    let stats = par.runs[0].search.expect("searched backend records stats");
    assert!(stats.costed > 0 && stats.bound_pruned > 0);
    assert!(stats.bound_pruned + stats.costed <= stats.enumerated);
    assert!(par.runs[1].search.is_none(), "Eyeriss searches nothing");
    let back = RunReport::from_json_str(&par.to_json_string()).unwrap();
    assert_eq!(back, par);
}

/// `Session::cache_hits` exposes the per-pair accounting of the last run,
/// matching what the report records.
#[test]
fn per_pair_cache_hits_match_the_report() {
    let session = Session::builder()
        .backend(Morph::new())
        .backend(Eyeriss::new())
        .network(resnet_like())
        .network(pool_like())
        .build();
    assert_eq!(session.cache_hits(0, 0), None, "nothing recorded yet");
    let report = session.run();
    for (i, run) in report.runs.iter().enumerate() {
        let (bi, ni) = (i / 2, i % 2);
        assert_eq!(
            session.cache_hits(bi, ni),
            Some(run.cache_hits),
            "{} on {}",
            run.network,
            run.backend
        );
    }
}

/// The pipeline section rides inside the `RunReport` JSON exactly, and the
/// schedule it reports can only improve on per-layer-serial throughput.
#[test]
fn pipeline_report_round_trips_and_only_helps() {
    let report = Session::builder()
        .backend(Morph::new())
        .backend(Eyeriss::new())
        .network(resnet_like())
        .pipeline(PipelineMode::Rebalanced)
        .build()
        .run();
    for run in &report.runs {
        let p = run.pipeline.as_ref().unwrap();
        assert_eq!(p.stages.len(), run.layers.len());
        assert!(p.steady_fps >= p.serial_fps, "{}", run.backend);
        assert!(run.layer(&p.bottleneck).is_some());
        // One bounded channel per conv-level dependency edge.
        assert_eq!(p.edges.len(), run.edges.len());
        // resnet_like is a chain, so the chain baseline is the schedule.
        assert_eq!(p.chain_fps, p.steady_fps);
        assert_eq!(p.chain_fill_cycles, p.fill_cycles);
    }
    let back = RunReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(report, back);
}

/// A fork/join network: two branches off a stem, concatenated.
fn forked() -> Network {
    let stem = ConvShape::new_3d(16, 16, 4, 8, 16, 3, 3, 3).with_pad(1, 1);
    let b0 = ConvShape::new_3d(16, 16, 4, 16, 8, 3, 3, 3).with_pad(1, 1);
    let b1a = ConvShape::new_3d(16, 16, 4, 16, 4, 1, 1, 1);
    let b1b = ConvShape::new_3d(16, 16, 4, 4, 8, 3, 3, 3).with_pad(1, 1);
    let head = ConvShape::new_3d(16, 16, 4, 16, 16, 1, 1, 1);
    let mut n = Network::new("forked");
    n.conv("stem", stem);
    let mut f = n.fork();
    f.branch().conv("b0", b0);
    f.branch().conv("b1_reduce", b1a).conv("b1_3x3", b1b);
    f.concat("mix");
    n.conv("head", head);
    n
}

/// Branch-parallel scheduling: the fork/join stages fill along the
/// critical path instead of the serial chain, so the DAG schedule beats
/// the linearized-chain baseline on fill latency while steady throughput
/// stays bottleneck-limited (never worse than serial).
#[test]
fn branch_parallel_pipeline_beats_the_chain_baseline() {
    let net = forked();
    assert!(net.is_branching());
    let report = Session::builder()
        .backend(Morph::new())
        .network(net)
        .pipeline(PipelineMode::Analytic)
        .build()
        .run();
    let run = &report.runs[0];
    let p = run.pipeline.as_ref().unwrap();
    // The run records the real fork/join edges: stem feeds both branch
    // heads, both branch tails feed the head through the concat.
    assert_eq!(run.edges, vec![(0, 1), (0, 2), (1, 4), (2, 3), (3, 4)]);
    assert!(
        p.fill_cycles < p.chain_fill_cycles,
        "parallel branches fill faster"
    );
    assert!(p.fill_speedup() > 1.0);
    assert!(p.steady_fps >= p.serial_fps);
    // The whole report (edges included) round-trips exactly.
    let back = RunReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(report, back);
}

/// The acceptance check on a real zoo workload: Two_Stream's parallel
/// streams give the DAG schedule a strictly better fill latency and a
/// steady_fps at least as high as the chain baseline's on every backend.
#[test]
fn zoo_two_stream_gains_from_branch_parallel_stages() {
    let report = Session::builder()
        .backend(Eyeriss::new()) // closed-form model: fast on 10 layers
        .network(morph_nets::zoo::by_name("Two_Stream").unwrap())
        .pipeline(PipelineMode::Analytic)
        .build()
        .run();
    let p = report.runs[0].pipeline.as_ref().unwrap();
    assert!(
        p.steady_fps >= p.chain_fps - 1e-9,
        "branch-parallel steady {} vs chain {}",
        p.steady_fps,
        p.chain_fps
    );
    assert!(
        p.fill_cycles < p.chain_fill_cycles,
        "parallel streams must fill faster than the linearized chain"
    );
    assert!(p.steady_fps >= p.serial_fps);
}

/// DAG-aware rebalancing through the public API: on a fork/join network
/// the `DagRebalanced` schedule streams at least as fast as the greedy
/// `Rebalanced` one, never spends more energy per frame, and records the
/// cluster share each stage actually occupies (schema v4).
#[test]
fn dag_rebalancing_beats_greedy_on_energy_at_equal_fps() {
    let run = |mode| {
        Session::builder()
            .backend(Morph::new())
            .network(forked())
            .pipeline(mode)
            .build()
            .run()
    };
    let greedy = run(PipelineMode::Rebalanced);
    let dag = run(PipelineMode::DagRebalanced);
    let g = greedy.runs[0].pipeline.as_ref().unwrap();
    let d = dag.runs[0].pipeline.as_ref().unwrap();
    assert!(d.steady_fps >= g.steady_fps - 1e-9);
    assert!(d.energy_per_frame_pj <= g.energy_per_frame_pj + 1e-6);
    assert!(d.stages.iter().all(|s| (1..=6).contains(&s.clusters)));
    // The v4 report round-trips exactly, clusters and scores included.
    let back = RunReport::from_json_str(&dag.to_json_string()).unwrap();
    assert_eq!(back, dag);
}

/// The Pareto sweep through the public API: the frontier is free of
/// dominated points, covers the greedy operating point, and a capped
/// sweep respects its cap on every reported point.
#[test]
fn pareto_sweep_invariants_hold_through_the_public_api() {
    let run = |mode| {
        Session::builder()
            .backend(Morph::new())
            .network(forked())
            .pipeline(mode)
            .build()
            .run()
    };
    let greedy_fps = run(PipelineMode::Rebalanced).runs[0]
        .pipeline
        .as_ref()
        .unwrap()
        .steady_fps;
    let free = run(PipelineMode::Pareto { power_cap_mw: None });
    let p = free.runs[0].pipeline.as_ref().unwrap();
    let pareto = p.pareto.as_ref().expect("sweep attaches its frontier");
    assert!(!pareto.points.is_empty());
    for a in &pareto.points {
        assert!(!pareto.points.iter().any(|b| b.dominates(a)));
    }
    assert!(pareto.best_fps_point().unwrap().steady_fps >= greedy_fps - 1e-9);

    // Cap at the frontier's coolest point: still attainable, certainly
    // binding for the hotter points.
    let cap = pareto
        .points
        .iter()
        .map(|q| q.peak_power_mw)
        .fold(f64::INFINITY, f64::min)
        .ceil() as u64;
    let capped = run(PipelineMode::Pareto {
        power_cap_mw: Some(cap),
    });
    let cp = capped.runs[0].pipeline.as_ref().unwrap();
    let cpareto = cp.pareto.as_ref().unwrap();
    assert_eq!(cpareto.power_cap_mw, Some(cap));
    assert!(!cpareto.points.is_empty(), "cap chosen to be attainable");
    for point in &cpareto.points {
        assert!(point.peak_power_mw <= cap as f64);
    }
    assert!(
        cp.peak_power_mw <= cap as f64,
        "scheduled point obeys the cap"
    );
    let back = RunReport::from_json_str(&capped.to_json_string()).unwrap();
    assert_eq!(back, capped);
}

/// Schema v3 documents (no allocation/power fields) upgrade on read: the
/// report parses at the current schema with those fields marked
/// unrecorded and keeps every pre-existing number.
#[test]
fn v3_documents_upgrade_on_read() {
    let rep = Session::builder()
        .backend(Eyeriss::new())
        .network(forked())
        .pipeline(PipelineMode::Analytic)
        .build()
        .run();
    // Rewrite the serialized document into its v3 shape.
    let mut doc = morph_json::Value::parse(&rep.to_json_string()).unwrap();
    let morph_json::Value::Obj(top) = &mut doc else {
        panic!()
    };
    top.insert("schema".into(), morph_json::Value::Int(3));
    let Some(morph_json::Value::Arr(runs)) = top.get_mut("runs") else {
        panic!()
    };
    for run in runs {
        let morph_json::Value::Obj(run) = run else {
            panic!()
        };
        let Some(morph_json::Value::Obj(p)) = run.get_mut("pipeline") else {
            panic!()
        };
        p.remove("energy_per_frame_pj");
        p.remove("peak_power_mw");
        p.remove("pareto");
        let Some(morph_json::Value::Arr(stages)) = p.get_mut("stages") else {
            panic!()
        };
        for stage in stages {
            let morph_json::Value::Obj(stage) = stage else {
                panic!()
            };
            stage.remove("clusters");
        }
    }
    let upgraded = RunReport::from_json_str(&doc.pretty()).unwrap();
    assert_eq!(upgraded.schema, morph_core::SCHEMA_VERSION);
    let p = upgraded.runs[0].pipeline.as_ref().unwrap();
    assert_eq!(p.energy_per_frame_pj, 0.0);
    assert_eq!(p.peak_power_mw, 0.0);
    assert!(p.pareto.is_none());
    assert!(p.stages.iter().all(|s| s.clusters == 0));
    let orig = rep.runs[0].pipeline.as_ref().unwrap();
    assert_eq!(p.steady_fps, orig.steady_fps);
    assert_eq!(p.fill_cycles, orig.fill_cycles);
    assert_eq!(upgraded.runs[0].layers, rep.runs[0].layers);
    // Upgraded reports round-trip exactly through the v4 writer.
    let again = RunReport::from_json_str(&upgraded.to_json_string()).unwrap();
    assert_eq!(again, upgraded);
}

/// `evaluate_layer_for` overrides the backend's built-time objective: a
/// latency-objective search is at least as fast as the energy-optimal one.
#[test]
fn objective_override_reaches_latency_optimal_mappings() {
    let sh = layer();
    let energy_opt = Morph::new();
    let base = energy_opt.evaluate_layer(&sh).report;
    let perf = energy_opt
        .evaluate_layer_for(&sh, Objective::Performance)
        .report;
    assert!(perf.cycles.total <= base.cycles.total);
    // Fixed-dataflow backends ignore the override.
    let ey = Eyeriss::new();
    assert_eq!(
        ey.evaluate_layer_for(&sh, Objective::Performance).report,
        ey.evaluate_layer(&sh).report
    );
}

trait CloneNamed {
    fn clone_named(&self, name: &str) -> Self;
}

impl CloneNamed for morph_core::LayerRecord {
    fn clone_named(&self, name: &str) -> Self {
        let mut c = self.clone();
        c.name = name.to_string();
        c
    }
}
