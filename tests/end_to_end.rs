//! End-to-end integration: the optimizer's chosen configuration executes
//! bit-exactly on the functional hardware, and the analytical traffic
//! engine agrees with the hardware counters where their assumptions
//! coincide.

use morph_core::{ArchSpec, Backend as _, Morph};
use morph_dataflow::config::{LevelConfig, TilingConfig};
use morph_dataflow::traffic::layer_traffic;
use morph_hw::MorphChip;
use morph_tensor::prelude::*;

/// The optimizer's decision for a small layer runs on the chip model and
/// reproduces Algorithm 1 exactly.
#[test]
fn optimizer_decision_executes_bit_exactly() {
    let shape = ConvShape::new_3d(10, 10, 4, 6, 16, 3, 3, 3).with_pad(1, 1);
    let morph = Morph::new();
    let d = morph.evaluate_layer(&shape).decision.unwrap();

    let input = synth_input(&shape, 77);
    let filters = synth_filters(&shape, 78);
    let mut chip = MorphChip::new(ArchSpec::morph());
    chip.configure(&shape, &d.config)
        .expect("chosen config fits the hardware");
    let (out, counters) = chip.run_layer(&shape, &d.config, &input, &filters);

    let reference = conv3d_reference(&shape, &input, &filters);
    assert_eq!(out.as_slice(), reference.as_slice());
    assert_eq!(counters.maccs, shape.maccs());
}

/// For a halo-free layer (1×1×1 filters) with untiled spatial dims, the
/// analytical DRAM byte count equals the functional chip's DRAM reads
/// exactly — cross-validating the two models.
#[test]
fn analytical_traffic_matches_hw_counters_without_halo() {
    let shape = ConvShape::new_3d(8, 8, 4, 6, 12, 1, 1, 1);
    let whole = Tile::whole(&shape);
    // Tile only K and C so no sliding-window reuse is involved.
    let cfg = TilingConfig {
        levels: vec![
            LevelConfig {
                order: "CKWHF".parse().unwrap(),
                tile: whole
                    .with_extent(Dim::K, 4)
                    .with_extent(Dim::C, 3)
                    .with_extent(Dim::H, 4),
            },
            LevelConfig {
                order: "ckwhf".parse().unwrap(),
                tile: whole
                    .with_extent(Dim::K, 4)
                    .with_extent(Dim::C, 3)
                    .with_extent(Dim::H, 4),
            },
            LevelConfig {
                order: "ckwhf".parse().unwrap(),
                tile: whole
                    .with_extent(Dim::K, 2)
                    .with_extent(Dim::C, 1)
                    .with_extent(Dim::H, 2),
            },
            LevelConfig {
                order: "ckwhf".parse().unwrap(),
                tile: Tile {
                    h: 1,
                    w: 1,
                    f: 1,
                    c: 1,
                    k: 2,
                },
            },
        ],
    }
    .normalize(&shape);

    let analytical = layer_traffic(&shape, &cfg);
    let input = synth_input(&shape, 5);
    let filters = synth_filters(&shape, 6);
    let mut chip = MorphChip::new(ArchSpec::morph());
    chip.configure(&shape, &cfg).unwrap();
    let (_, counters) = chip.run_layer(&shape, &cfg, &input, &filters);

    assert_eq!(
        counters.dram_reads,
        analytical.dram().input_down + analytical.dram().weight_down,
        "DRAM reads must match the engine exactly for halo-free tiling"
    );
    assert_eq!(counters.dram_writes, analytical.dram().output_up);
}

/// Persisted schedules drive the hardware after a round trip through the
/// text format (save → recall → execute).
#[test]
fn recalled_schedule_drives_hardware() {
    use morph_optimizer::schedule::{from_text, to_text, ScheduleEntry};
    let shape = ConvShape::new_3d(8, 8, 3, 4, 8, 3, 3, 2).with_pad(1, 0);
    let d = Morph::new().evaluate_layer(&shape).decision.unwrap();
    let text = to_text(&[ScheduleEntry {
        layer: "l".into(),
        config: d.config,
        par: d.par,
    }]);
    let recalled = from_text(&text).unwrap();

    let input = synth_input(&shape, 9);
    let filters = synth_filters(&shape, 10);
    let mut chip = MorphChip::new(ArchSpec::morph());
    chip.configure(&shape, &recalled[0].config).unwrap();
    let (out, _) = chip.run_layer(&shape, &recalled[0].config, &input, &filters);
    assert_eq!(
        out.as_slice(),
        conv3d_reference(&shape, &input, &filters).as_slice()
    );
}

/// The three accelerator presets agree on the work performed (MACCs) for
/// every layer of a real network, while disagreeing on cost.
#[test]
fn presets_agree_on_work_disagree_on_cost() {
    let mut net = morph_nets::Network::new("mini");
    net.conv(
        "a",
        ConvShape::new_3d(14, 14, 4, 16, 32, 3, 3, 3).with_pad(1, 1),
    );
    net.conv(
        "b",
        ConvShape::new_3d(14, 14, 4, 32, 32, 3, 3, 3).with_pad(1, 1),
    );

    let report = morph_core::Session::builder()
        .backend(Morph::new())
        .backend(morph_core::MorphBase::new())
        .backend(morph_core::Eyeriss::new())
        .network(net)
        .build()
        .run();
    let [rm, rb, re] = &report.runs[..] else {
        panic!("three runs")
    };
    assert_eq!(rm.total.maccs, rb.total.maccs);
    assert_eq!(rm.total.maccs, re.total.maccs);
    assert!(rm.total.total_pj() <= rb.total.total_pj());
}
