//! Functional end-to-end network execution: run a miniature 3D CNN
//! (conv → pool → requantize → conv) through the tensor substrate, with
//! each convolution also executed on the functional Morph chip.

use morph_core::{ArchSpec, Backend as _, Morph};
use morph_hw::MorphChip;
use morph_tensor::prelude::*;

#[test]
fn two_layer_network_runs_on_chip() {
    // Layer 1: 3→8 channels over 6 frames of 12×12.
    let l1 = ConvShape::new_3d(12, 12, 6, 3, 8, 3, 3, 3).with_pad(1, 1);
    let input = synth_input(&l1, 1);
    let f1 = synth_filters(&l1, 2);

    let morph = Morph::new();
    let d1 = morph.evaluate_layer(&l1).decision.unwrap();
    let mut chip = MorphChip::new(ArchSpec::morph());
    chip.configure(&l1, &d1.config).unwrap();
    let (acc1, _) = chip.run_layer(&l1, &d1.config, &input, &f1);
    assert_eq!(
        acc1.as_slice(),
        conv3d_reference(&l1, &input, &f1).as_slice()
    );

    // Pool 2×2×2 then requantize to 8 bits for the next layer.
    let pooled = maxpool3d(&acc1, &PoolShape::new(2, 2, 2));
    let shift = choose_shift(&pooled);
    let act2 = requantize_relu(&pooled, shift);
    let (c2, f2_frames, h2, w2) = act2.shape();

    // Layer 2 consumes the produced activations.
    let l2 = ConvShape::new_3d(h2, w2, f2_frames, c2, 4, 3, 3, 3).with_pad(1, 1);
    let f2 = synth_filters(&l2, 3);
    let d2 = morph.evaluate_layer(&l2).decision.unwrap();
    let mut chip2 = MorphChip::new(ArchSpec::morph());
    chip2.configure(&l2, &d2.config).unwrap();
    let (acc2, counters) = chip2.run_layer(&l2, &d2.config, &act2, &f2);
    assert_eq!(
        acc2.as_slice(),
        conv3d_reference(&l2, &act2, &f2).as_slice()
    );
    assert_eq!(counters.maccs, l2.maccs());
}

#[test]
fn pooling_halves_dimensions_like_c3d() {
    let l1 = ConvShape::new_3d(16, 16, 8, 2, 4, 3, 3, 3).with_pad(1, 1);
    let input = synth_input(&l1, 4);
    let filters = synth_filters(&l1, 5);
    let acc = conv3d_reference(&l1, &input, &filters);
    let pooled = maxpool3d(&acc, &PoolShape::new(2, 2, 2));
    assert_eq!(pooled.shape(), (4, 4, 8, 8));
}
