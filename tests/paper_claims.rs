//! The paper's qualitative claims, asserted as integration tests.
//! Each test names the paper section/figure it guards.

use morph_core::{Backend, Eyeriss, Morph, MorphBase};
use morph_dataflow::arch::ArchSpec;
use morph_energy::area::{pe_area_base, pe_area_morph};
use morph_nets::zoo;
use morph_tensor::shape::ConvShape;

/// §VI-D / Fig. 9: on a 3D layer, Morph ≤ Morph_base ≤ Eyeriss in energy.
#[test]
fn fig9_ordering_on_3d_layer() {
    let layer = ConvShape::new_3d(28, 28, 8, 128, 256, 3, 3, 3).with_pad(1, 1);
    let m = Morph::new().run_layer(&layer).total_pj();
    let b = MorphBase::new().run_layer(&layer).total_pj();
    let e = Eyeriss::new().run_layer(&layer).total_pj();
    assert!(m < b, "Morph {m} !< base {b}");
    assert!(b < e, "base {b} !< Eyeriss {e}");
}

/// §VI-D: the Morph-vs-Eyeriss gap widens with more frames (I3D's 64
/// frames vs C3D's 16).
#[test]
fn temporal_reuse_gap_widens_with_frames() {
    let few = ConvShape::new_3d(28, 28, 4, 64, 64, 3, 3, 3).with_pad(1, 1);
    let many = ConvShape::new_3d(28, 28, 32, 64, 64, 3, 3, 3).with_pad(1, 1);
    let gap = |sh: &ConvShape| {
        let m = Morph::new().run_layer(sh).dynamic_pj();
        let e = Eyeriss::new().run_layer(sh).dynamic_pj();
        e / m
    };
    let g_few = gap(&few);
    let g_many = gap(&many);
    assert!(
        g_many > g_few,
        "gap {g_many} at 32 frames !> {g_few} at 4 frames"
    );
}

/// §VI-D: on 2D AlexNet-style layers, Eyeriss is competitive with
/// Morph_base (the 3D-provisioned baseline loses its advantage), while
/// Morph still wins via better tiling/ordering.
#[test]
fn two_d_crossover() {
    let layer = ConvShape::new_2d(13, 13, 256, 384, 3, 3).with_pad(1, 0);
    let m = Morph::new().run_layer(&layer).total_pj();
    let b = MorphBase::new().run_layer(&layer).total_pj();
    let e = Eyeriss::new().run_layer(&layer).total_pj();
    assert!(m < b, "Morph must beat base on 2D too");
    assert!(
        e < 2.0 * b,
        "Eyeriss must be competitive with the 3D-provisioned base on 2D"
    );
}

/// §VI-F / Table IV: flexibility costs ≈5 % PE area, dominated by control.
#[test]
fn table4_area_overhead() {
    let arch = ArchSpec::morph();
    let overhead = pe_area_morph(&arch).total() / pe_area_base(&arch).total() - 1.0;
    assert!(
        overhead > 0.03 && overhead < 0.07,
        "area overhead {overhead}"
    );
}

/// §III-A Fig. 4a: no single outer loop order is optimal for every C3D
/// layer (the motivation for flexible control).
#[test]
fn no_single_outer_order_wins_everywhere() {
    use morph_dataflow::traffic::layer_traffic;
    use morph_optimizer::allocate::{allocate_hierarchy, FitPolicy};
    let net = zoo::c3d();
    let arch = ArchSpec::morph();
    let orders = ["KWHCF", "WFHCK"];
    // For each of the two extreme orders, find a layer where it beats the
    // other on DRAM traffic.
    let dram = |layer: &ConvShape, order: &str| {
        let l2 =
            morph_optimizer::space::l2_tile_candidates(layer, &arch, morph_optimizer::Effort::Fast)
                .into_iter()
                .next()
                .unwrap();
        let cfg = allocate_hierarchy(
            layer,
            order.parse().unwrap(),
            "cfwhk".parse().unwrap(),
            l2,
            &arch,
            FitPolicy::Banked,
        )
        .unwrap();
        layer_traffic(layer, &cfg).dram().total()
    };
    let early = &net.layer("layer1").unwrap().shape;
    let late = &net.layer("layer5b").unwrap().shape;
    let k_first_wins_early = dram(early, orders[0]) <= dram(early, orders[1]);
    let k_first_wins_late = dram(late, orders[0]) <= dram(late, orders[1]);
    // The paper's observation: K-inner orders win early, lose late (or
    // vice versa) — they must not win everywhere.
    assert_ne!(
        k_first_wins_early, k_first_wins_late,
        "one order dominated both early and late layers"
    );
}

/// §II-C / Fig. 1b: 3D CNNs have higher average arithmetic intensity than
/// 2D CNNs. (Our AlexNet is modeled ungrouped, which inflates its reuse;
/// ResNet-3D is 1×1×1-heavy — so the claim is asserted on the averages and
/// on the pure-3D-kernel networks individually.)
#[test]
fn fig1b_reuse_ordering() {
    let nets = zoo::figure1_networks();
    let reuse: Vec<f64> = nets.iter().map(|n| n.avg_reuse()).collect();
    let avg2d = reuse[..3].iter().sum::<f64>() / 3.0;
    let avg3d = reuse[3..].iter().sum::<f64>() / 3.0;
    assert!(
        avg3d > 2.0 * avg2d,
        "avg 3D reuse {avg3d} !> 2× avg 2D reuse {avg2d}"
    );
    // C3D and I3D individually dominate every 2D network.
    for &three_d in &[reuse[3], reuse[5]] {
        for two_d in &reuse[..3] {
            assert!(three_d > *two_d, "3D reuse {three_d} !> 2D reuse {two_d}");
        }
    }
}

/// §VI-E / Fig. 10: Morph's perf/W beats Morph_base on a 3D layer whose
/// dimensions mismatch the baseline's fixed Hp×Kp mapping.
#[test]
fn fig10_perf_per_watt_improvement() {
    let layer = ConvShape::new_3d(7, 7, 2, 512, 512, 3, 3, 3).with_pad(1, 1);
    let m = Morph::new().run_layer(&layer);
    let b = MorphBase::new().run_layer(&layer);
    assert!(m.perf_per_watt() > b.perf_per_watt());
    assert!(m.cycles.utilization() > b.cycles.utilization());
}
